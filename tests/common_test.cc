// Tests for the common utilities: PRNG determinism and distribution,
// table formatting, and the check macros.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "common/prng.h"
#include "common/table.h"

namespace gpumas {
namespace {

TEST(PrngTest, SplitmixIsDeterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(PrngTest, HashCombineOrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(PrngTest, SequenceIsReproducible) {
  Prng a(7);
  Prng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(PrngTest, NextBelowStaysInRange) {
  Prng prng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(prng.next_below(17), 17u);
  }
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng prng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = prng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(PrngTest, UniformityRoughCheck) {
  // Chi-square-lite: 16 buckets over 16k draws should each hold ~1000.
  Prng prng(99);
  int buckets[16] = {};
  for (int i = 0; i < 16000; ++i) buckets[prng.next_below(16)]++;
  for (int b = 0; b < 16; ++b) {
    EXPECT_GT(buckets[b], 800) << "bucket " << b;
    EXPECT_LT(buckets[b], 1200) << "bucket " << b;
  }
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.begin_row().cell(std::string("x")).cell(uint64_t{7});
  t.begin_row().cell(std::string("longer")).cell(1.5, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer | 1.50"), std::string::npos);
  EXPECT_NE(out.find("-+-"), std::string::npos);
}

TEST(TableTest, NumericPrecision) {
  Table t({"v"});
  t.begin_row().cell(3.14159, 3);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(GPUMAS_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsWithLocation) {
  try {
    GPUMAS_CHECK(false);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("common_test.cc"),
              std::string::npos);
  }
}

TEST(CheckTest, MessageMacroIncludesDetail) {
  try {
    GPUMAS_CHECK_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace gpumas
