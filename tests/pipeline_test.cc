// End-to-end integration test: the complete paper pipeline — profile,
// classify, measure interference, build the Eq 3.3-3.7 matching problem,
// solve it, execute the schedule — on a scaled-down device, asserting the
// cross-module invariants that the figure benches rely on.
#include <gtest/gtest.h>

#include "ilp/pattern.h"
#include "interference/interference.h"
#include "profile/profile.h"
#include "sched/runner.h"
#include "sim/gpu.h"

namespace gpumas {
namespace {

using profile::AppClass;

sim::GpuConfig small_gpu() {
  sim::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.num_channels = 2;
  cfg.l2.size_bytes = 128 * 1024;
  return cfg;
}

// A mini-suite with one archetype per class, sized for the small device.
std::vector<sim::KernelParams> mini_suite() {
  std::vector<sim::KernelParams> s;

  sim::KernelParams hog;  // class M archetype
  hog.name = "hog";
  hog.num_blocks = 16;
  hog.warps_per_block = 4;
  hog.insns_per_warp = 200;
  hog.mem_ratio = 0.25;
  hog.pattern = sim::AccessPattern::kRandom;
  hog.footprint_bytes = 256ull << 20;
  hog.divergence = 8;
  hog.mlp = 16;
  hog.ilp = 2;
  hog.seed = 1;
  s.push_back(hog);

  sim::KernelParams mixed;  // class MC-ish archetype
  mixed.name = "mixed";
  mixed.num_blocks = 12;
  mixed.warps_per_block = 4;
  mixed.insns_per_warp = 600;
  mixed.mem_ratio = 0.12;
  mixed.pattern = sim::AccessPattern::kTiled;
  mixed.footprint_bytes = 32 << 20;
  mixed.hot_fraction = 0.5;
  mixed.hot_bytes = 48 << 10;
  mixed.divergence = 2;
  mixed.mlp = 4;
  mixed.seed = 2;
  s.push_back(mixed);

  sim::KernelParams cachey;  // class C archetype
  cachey.name = "cachey";
  cachey.num_blocks = 10;
  cachey.warps_per_block = 2;
  cachey.insns_per_warp = 500;
  cachey.mem_ratio = 0.25;
  cachey.pattern = sim::AccessPattern::kTiled;
  cachey.footprint_bytes = 4 << 20;
  cachey.hot_fraction = 0.95;
  cachey.hot_bytes = 96 << 10;
  cachey.divergence = 4;
  cachey.mlp = 1;
  cachey.ilp = 2;
  cachey.seed = 3;
  s.push_back(cachey);

  sim::KernelParams compute;  // class A archetype
  compute.name = "compute";
  compute.num_blocks = 16;
  compute.warps_per_block = 4;
  compute.insns_per_warp = 800;
  compute.mem_ratio = 0.01;
  compute.ilp = 8;
  compute.seed = 4;
  s.push_back(compute);

  return s;
}

TEST(PipelineTest, EndToEnd) {
  const sim::GpuConfig cfg = small_gpu();
  const auto kernels = mini_suite();

  // 1. Profile.
  profile::Profiler profiler(cfg);
  auto profiles = profiler.profile_suite(kernels);
  ASSERT_EQ(profiles.size(), kernels.size());
  for (const auto& p : profiles) {
    EXPECT_GT(p.solo_cycles, 0u) << p.name;
    EXPECT_GT(p.ipc, 0.0) << p.name;
  }
  // The archetypes must separate along the classifier's axes even if the
  // exact class labels differ on this scaled device: the hog moves the
  // most DRAM data, the compute app the least.
  EXPECT_GT(profiles[0].mb_gbps, profiles[3].mb_gbps * 3);
  EXPECT_GT(profiles[2].l2l1_gbps, profiles[3].l2l1_gbps);
  // Pin the classes for deterministic downstream assertions.
  profiles[0].cls = AppClass::kM;
  profiles[1].cls = AppClass::kMC;
  profiles[2].cls = AppClass::kC;
  profiles[3].cls = AppClass::kA;

  // 2. Interference matrix.
  const auto model =
      interference::SlowdownModel::measure_pairwise(cfg, kernels, profiles);
  for (int a = 0; a < profile::kNumClasses; ++a) {
    for (int b = 0; b < profile::kNumClasses; ++b) {
      if (a == b) continue;  // same-class cells have a single app here
      const double s = model.pair_slowdown(static_cast<AppClass>(a),
                                           static_cast<AppClass>(b));
      EXPECT_GE(s, 1.0) << a << "," << b;
      EXPECT_LT(s, 50.0) << a << "," << b;
    }
  }

  // 3. Build a queue of 8 jobs (2 per class), match with ILP, run.
  std::vector<sched::Job> queue;
  for (int rep = 0; rep < 2; ++rep) {
    for (size_t i = 0; i < kernels.size(); ++i) {
      sched::Job j;
      j.kernel = kernels[i];
      j.cls = profiles[i].cls;
      j.arrival = static_cast<int>(queue.size());
      queue.push_back(j);
    }
  }

  const auto problem = sched::build_matching_problem(queue, 2, model);
  EXPECT_EQ(problem.class_counts, (std::vector<int>{2, 2, 2, 2}));
  const auto solution = ilp::solve_matching(problem);
  ASSERT_TRUE(solution.feasible);
  // Cross-check the optimizer against brute force on this real instance.
  const auto brute = ilp::solve_matching_bruteforce(problem);
  EXPECT_NEAR(solution.objective, brute.objective, 1e-9);

  // 4. Execute under every policy; totals must agree and Serial must be
  //    the throughput loser on this underutilized device.
  sched::QueueRunner runner(cfg, profiles, model);
  const auto serial = runner.run(queue, sched::Policy::kSerial, 2);
  uint64_t insns = serial.total_thread_insns;
  double best = 0.0;
  for (sched::Policy p :
       {sched::Policy::kEven, sched::Policy::kProfileBased,
        sched::Policy::kIlp, sched::Policy::kIlpSmra}) {
    const auto rep = runner.run(queue, p, 2);
    EXPECT_EQ(rep.total_thread_insns, insns) << sched::policy_name(p);
    best = std::max(best, rep.device_throughput());
  }
  EXPECT_GT(best, serial.device_throughput());
}

TEST(PipelineTest, ThreeWayEndToEnd) {
  const sim::GpuConfig cfg = small_gpu();
  const auto kernels = mini_suite();
  profile::Profiler profiler(cfg);
  auto profiles = profiler.profile_suite(kernels);
  profiles[0].cls = AppClass::kM;
  profiles[1].cls = AppClass::kMC;
  profiles[2].cls = AppClass::kC;
  profiles[3].cls = AppClass::kA;
  auto model =
      interference::SlowdownModel::measure_pairwise(cfg, kernels, profiles);
  model.measure_triples(cfg, kernels, profiles);

  // Measured triples must be at least as pessimistic as the best pair.
  const double triple =
      model.slowdown(AppClass::kC, {AppClass::kM, AppClass::kA});
  EXPECT_GE(triple, 1.0);

  std::vector<sched::Job> queue;
  for (int rep = 0; rep < 3; ++rep) {
    for (size_t i = 0; i < kernels.size(); ++i) {
      sched::Job j;
      j.kernel = kernels[i];
      j.cls = profiles[i].cls;
      j.arrival = static_cast<int>(queue.size());
      queue.push_back(j);
    }
  }
  sched::QueueRunner runner(cfg, profiles, model);
  const auto report = runner.run(queue, sched::Policy::kIlp, 3);
  ASSERT_EQ(report.groups.size(), 4u);
  for (const auto& g : report.groups) EXPECT_EQ(g.names.size(), 3u);
  EXPECT_GT(report.device_throughput(), 0.0);
}

}  // namespace
}  // namespace gpumas
