// Unit tests for the set-associative LRU tag array.
#include "sim/cache.h"

#include <gtest/gtest.h>

#include "common/prng.h"

namespace gpumas::sim {
namespace {

CacheConfig small_cfg() {
  // 4 sets x 2 ways x 128 B lines = 1 kB.
  return CacheConfig{1024, 128, 2, 8};
}

TEST(CacheTest, MissThenHitAfterFill) {
  Cache c(small_cfg());
  EXPECT_FALSE(c.access(42));
  c.fill(42);
  EXPECT_TRUE(c.access(42));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheTest, GeometryFromConfig) {
  Cache c(small_cfg());
  EXPECT_EQ(c.num_sets(), 4u);
  EXPECT_EQ(c.ways(), 2u);
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  Cache c(small_cfg());
  // Lines 0, 4, 8 all map to set 0 (line % 4). Two ways.
  c.fill(0);
  c.fill(4);
  EXPECT_TRUE(c.access(0));  // 0 becomes MRU, 4 is LRU
  c.fill(8);                 // evicts 4
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(4));
  EXPECT_TRUE(c.contains(8));
}

TEST(CacheTest, FillOfResidentLineDoesNotDuplicate) {
  Cache c(small_cfg());
  c.fill(0);
  c.fill(4);
  c.fill(0);  // refresh, not duplicate: set still holds both lines
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(4));
  c.fill(8);  // evicts 4 (LRU after 0's refresh)
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(4));
}

TEST(CacheTest, DisjointSetsDoNotInterfere) {
  Cache c(small_cfg());
  for (uint64_t line = 0; line < 4; ++line) c.fill(line);
  for (uint64_t line = 0; line < 4; ++line) EXPECT_TRUE(c.contains(line));
}

TEST(CacheTest, ResetClearsContentsAndCounters) {
  Cache c(small_cfg());
  c.fill(7);
  ASSERT_TRUE(c.access(7));
  c.reset();
  EXPECT_FALSE(c.contains(7));
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
}

// Property: the number of resident lines never exceeds capacity, and a
// working set no larger than one set's way count always re-hits.
TEST(CacheTest, PropertyWorkingSetWithinWaysAlwaysHits) {
  Cache c(small_cfg());
  // Two lines per set, 4 sets: 8-line working set fits exactly.
  for (uint64_t line = 0; line < 8; ++line) c.fill(line);
  for (int round = 0; round < 4; ++round) {
    for (uint64_t line = 0; line < 8; ++line) {
      EXPECT_TRUE(c.access(line)) << "line " << line << " round " << round;
    }
  }
}

TEST(CacheTest, PropertyRandomStreamHitRateMatchesRecount) {
  Cache c(small_cfg());
  Prng prng(123);
  uint64_t expected_hits = 0;
  uint64_t expected_misses = 0;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t line = prng.next_below(64);
    if (c.access(line)) {
      ++expected_hits;
    } else {
      ++expected_misses;
      c.fill(line);
    }
  }
  EXPECT_EQ(c.hits(), expected_hits);
  EXPECT_EQ(c.misses(), expected_misses);
  EXPECT_EQ(expected_hits + expected_misses, 2000u);
}

class CacheWaysTest : public ::testing::TestWithParam<uint32_t> {};

// Property: with W ways, a set scanned cyclically with W lines always hits
// after warm-up, and with W+1 lines (LRU + cyclic scan) never hits.
TEST_P(CacheWaysTest, CyclicScanBoundary) {
  const uint32_t ways = GetParam();
  CacheConfig cfg{128 * ways * 4, 128, ways, 8};
  Cache c(cfg);
  const uint32_t sets = c.num_sets();
  // W resident lines in set 0.
  for (uint32_t k = 0; k < ways; ++k) c.fill(k * sets);
  for (uint32_t k = 0; k < ways * 3; ++k) {
    EXPECT_TRUE(c.access((k % ways) * sets));
  }
  // W+1 lines cyclically: LRU guarantees 0% hits.
  Cache c2(cfg);
  for (uint32_t k = 0; k < (ways + 1) * 3; ++k) {
    const uint64_t line = (k % (ways + 1)) * sets;
    EXPECT_FALSE(c2.access(line));
    c2.fill(line);
  }
}

INSTANTIATE_TEST_SUITE_P(Ways, CacheWaysTest, ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace gpumas::sim
