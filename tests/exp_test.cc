// Tests for the experiment engine: scenario resolution, repetitions, the
// shared-environment memoization, and — the load-bearing property — that a
// multi-threaded batch reproduces the single-threaded reports exactly.
#include "exp/experiment.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace gpumas::exp {
namespace {

using profile::AppClass;

sim::GpuConfig small_gpu() {
  sim::GpuConfig cfg;
  cfg.num_sms = 12;
  cfg.num_channels = 2;
  cfg.l2.size_bytes = 64 * 1024;
  return cfg;
}

sim::KernelParams kernel(const std::string& name, double mem_ratio,
                         uint64_t seed, int blocks = 10) {
  sim::KernelParams kp;
  kp.name = name;
  kp.num_blocks = blocks;
  kp.warps_per_block = 4;
  kp.insns_per_warp = 250;
  kp.mem_ratio = mem_ratio;
  kp.footprint_bytes = 8 << 20;
  kp.divergence = 2;
  kp.seed = seed;
  return kp;
}

// A 4-app stand-in suite so tests never pay for the 14-benchmark suite.
std::vector<sim::KernelParams> tiny_suite() {
  return {kernel("mem", 0.3, 1), kernel("cpu", 0.02, 2),
          kernel("mid", 0.1, 3), kernel("mix", 0.05, 4)};
}

// Thresholds scaled to the 12-SM/2-channel device so the tiny suite spreads
// over all four classes (mem -> M, mid -> MC, mix -> C, cpu -> A), which
// distribution queues require.
profile::ClassifierThresholds tiny_thresholds() {
  profile::ClassifierThresholds t;
  t.alpha = 36.0;
  t.beta = 32.0;
  t.gamma = 25.0;
  t.epsilon = 150.0;
  return t;
}

// Canonical rendering of a report, used for exact comparisons.
std::string serialize(const sched::RunReport& r) {
  std::ostringstream os;
  os << sched::policy_name(r.policy) << " " << r.total_cycles << " "
     << r.total_thread_insns << "\n";
  for (const auto& g : r.groups) {
    os << g.label() << " " << g.cycles << " " << g.serial_cycles << " "
       << g.smra_adjustments << " " << g.smra_reverts;
    for (size_t i = 0; i < g.names.size(); ++i) {
      os << " " << g.app_cycles[i] << "/" << g.app_thread_insns[i];
    }
    os << "\n";
  }
  return os.str();
}

std::string serialize(const std::vector<ScenarioResult>& results) {
  std::ostringstream os;
  for (const auto& r : results) {
    os << "== " << r.name << "\n";
    for (const auto& rep : r.reps) os << serialize(rep);
  }
  return os.str();
}

std::vector<ScenarioSpec> mixed_batch() {
  const sim::GpuConfig cfg = small_gpu();
  std::vector<ScenarioSpec> batch;
  for (const auto policy :
       {sched::Policy::kSerial, sched::Policy::kEven, sched::Policy::kIlp,
        sched::Policy::kIlpSmra}) {
    ScenarioSpec spec;
    spec.name = std::string("suite/") + sched::policy_name(policy);
    spec.config = cfg;
    spec.thresholds = tiny_thresholds();
    spec.queue = QueueSpec::Suite();
    spec.policy = policy;
    spec.nc = 2;
    batch.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "dist/even";
    spec.config = cfg;
    spec.thresholds = tiny_thresholds();
    spec.queue =
        QueueSpec::Distribution(sched::QueueDistribution::kEqual, 4, 11);
    spec.policy = sched::Policy::kEven;
    spec.nc = 2;
    spec.repetitions = 2;
    batch.push_back(spec);
  }
  {
    ScenarioSpec spec;
    spec.name = "explicit/custom";
    spec.config = cfg;
    spec.thresholds = tiny_thresholds();
    spec.queue = QueueSpec::Explicit(
        {kernel("custom", 0.15, 42), kernel("cpu", 0.02, 2)});
    spec.policy = sched::Policy::kEven;
    spec.nc = 2;
    batch.push_back(spec);
  }
  return batch;
}

TEST(ExperimentTest, ResultsFollowDeclarationOrder) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 1, tiny_suite());
  const auto batch = mixed_batch();
  const auto results = engine.run(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i].name, batch[i].name);
    EXPECT_FALSE(results[i].reps.empty());
    EXPECT_GT(results[i].report().device_throughput(), 0.0);
  }
}

TEST(ExperimentTest, MultiThreadedBatchIsByteIdenticalToSerial) {
  const auto batch = mixed_batch();

  profile::ProfileCache cache1;
  ExperimentRunner serial_engine(cache1, 1, tiny_suite());
  const std::string serial = serialize(serial_engine.run(batch));

  profile::ProfileCache cache4;
  ExperimentRunner parallel_engine(cache4, 4, tiny_suite());
  const std::string parallel = serialize(parallel_engine.run(batch));

  EXPECT_EQ(serial, parallel);

  // And again on the warm cache: reports must not change when every
  // profile lookup is a hit.
  const std::string warm = serialize(parallel_engine.run(batch));
  EXPECT_EQ(serial, warm);
}

TEST(ExperimentTest, RepetitionsRedrawDistributionQueues) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 2, tiny_suite());
  ScenarioSpec spec;
  spec.name = "reps";
  spec.config = small_gpu();
  spec.thresholds = tiny_thresholds();
  spec.queue = QueueSpec::Distribution(sched::QueueDistribution::kEqual, 4, 5);
  spec.policy = sched::Policy::kEven;
  spec.nc = 2;
  spec.repetitions = 3;
  const auto result = engine.run_one(spec);
  ASSERT_EQ(result.reps.size(), 3u);
  EXPECT_GT(result.mean_device_throughput(), 0.0);
}

TEST(ExperimentTest, SuiteExclusionShrinksTheQueue) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 1, tiny_suite());
  ScenarioSpec spec;
  spec.name = "excl";
  spec.config = small_gpu();
  spec.thresholds = tiny_thresholds();
  spec.queue = QueueSpec::Suite({"mem", "mid"});
  spec.policy = sched::Policy::kSerial;
  spec.nc = 2;
  const auto result = engine.run_one(spec);
  ASSERT_EQ(result.report().groups.size(), 2u);  // 4-app suite minus 2
  for (const auto& g : result.report().groups) {
    EXPECT_NE(g.names[0], "mem");
    EXPECT_NE(g.names[0], "mid");
  }
}

TEST(ExperimentTest, FixedPartitionChangesTheOutcome) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 2, tiny_suite());
  ScenarioSpec even;
  even.name = "even";
  even.config = small_gpu();
  even.thresholds = tiny_thresholds();
  even.queue = QueueSpec::Explicit({kernel("cpu", 0.02, 2),
                                    kernel("mem", 0.3, 1)});
  even.policy = sched::Policy::kEven;
  even.nc = 2;

  ScenarioSpec skewed = even;
  skewed.name = "skewed";
  skewed.fixed_partition = {10, 2};

  const auto results = engine.run({even, skewed});
  EXPECT_NE(serialize(results[0].report()), serialize(results[1].report()));
}

TEST(ExperimentTest, ExplicitQueueRejectsAliasedKernelNames) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 1, tiny_suite());
  ScenarioSpec spec;
  spec.name = "aliased";
  spec.config = small_gpu();
  spec.thresholds = tiny_thresholds();
  // Same name, different parameters: QueueRunner keys profiles by name,
  // so this must be rejected rather than silently mis-attributed.
  spec.queue = QueueSpec::Explicit(
      {kernel("dup", 0.3, 1), kernel("dup", 0.02, 2)});
  spec.policy = sched::Policy::kEven;
  spec.nc = 2;
  EXPECT_THROW(engine.run_one(spec), std::logic_error);
}

// Merges sharded result vectors: each index is filled by exactly one shard.
std::vector<ScenarioResult> merge_shards(
    const std::vector<std::vector<ScenarioResult>>& shards) {
  std::vector<ScenarioResult> merged(shards.front().size());
  for (const auto& part : shards) {
    for (size_t i = 0; i < part.size(); ++i) {
      if (part[i].has_reps()) merged[i] = part[i];
    }
  }
  return merged;
}

TEST(ExperimentTest, ShardUnionIsByteIdenticalToFullRun) {
  const auto batch = mixed_batch();  // includes a 2-repetition scenario

  profile::ProfileCache full_cache;
  ExperimentRunner full_engine(full_cache, 2, tiny_suite());
  const std::string full = serialize(full_engine.run(batch));

  // Each shard runs in its own engine and cache (as separate processes
  // would), at different thread counts.
  std::vector<std::vector<ScenarioResult>> parts;
  for (int index = 0; index < 2; ++index) {
    profile::ProfileCache cache;
    ExperimentRunner engine(cache, index == 0 ? 1 : 4, tiny_suite());
    parts.push_back(engine.run(batch, Shard{index, 2}));
  }
  EXPECT_EQ(serialize(merge_shards(parts)), full);

  // Same property for an uneven 3-way split.
  std::vector<std::vector<ScenarioResult>> thirds;
  for (int index = 0; index < 3; ++index) {
    profile::ProfileCache cache;
    ExperimentRunner engine(cache, 2, tiny_suite());
    thirds.push_back(engine.run(batch, Shard{index, 3}));
  }
  EXPECT_EQ(serialize(merge_shards(thirds)), full);
}

TEST(ExperimentTest, ShardKeepsNamesAndSkipsOtherShards) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 2, tiny_suite());
  const auto batch = mixed_batch();
  const auto results = engine.run(batch, Shard{1, 2});
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(results[i].name, batch[i].name);
    EXPECT_EQ(results[i].has_reps(), i % 2 == 1);
  }
  EXPECT_THROW(engine.run(batch, Shard{2, 2}), std::logic_error);
  EXPECT_THROW(engine.run(batch, Shard{0, 0}), std::logic_error);
}

TEST(ExperimentTest, ExplicitQueueUnderEvenBuildsNeitherProfilesNorModel) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 2, tiny_suite());
  for (const auto policy : {sched::Policy::kEven, sched::Policy::kSerial}) {
    ScenarioSpec spec;
    spec.name = "lazy-explicit";
    spec.config = small_gpu();
    spec.thresholds = tiny_thresholds();
    spec.queue = QueueSpec::Explicit(
        {kernel("custom", 0.15, 42), kernel("cpu", 0.02, 2)});
    spec.policy = policy;
    spec.nc = 2;
    engine.run_one(spec);
  }
  // Only the two explicit kernels were profiled — no suite profiling, no
  // interference measurement.
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.model_misses(), 0u);
}

TEST(ExperimentTest, SuiteQueueUnderEvenSkipsTheModel) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 1, tiny_suite());
  ScenarioSpec spec;
  spec.name = "lazy-suite";
  spec.config = small_gpu();
  spec.thresholds = tiny_thresholds();
  spec.queue = QueueSpec::Suite();
  spec.policy = sched::Policy::kEven;
  spec.nc = 2;
  engine.run_one(spec);
  EXPECT_GT(cache.misses(), 0u) << "suite queues need suite profiles";
  EXPECT_EQ(cache.model_misses(), 0u) << "Even must not force the model";

  // The ILP policy on the same env forces exactly one model measurement.
  spec.name = "ilp";
  spec.policy = sched::Policy::kIlp;
  engine.run_one(spec);
  EXPECT_EQ(cache.model_misses(), 1u);
}

TEST(ExperimentTest, WarmStoreReproducesColdReportsByteForByte) {
  const auto batch = mixed_batch();
  const std::string dir = "/tmp/gpumas_exp_store_test";
  std::filesystem::remove_all(dir);

  std::string cold;
  {
    profile::ProfileCache cache;
    ExperimentRunner engine(cache, 2, tiny_suite());
    cold = serialize(engine.run(batch));
    cache.save_store(dir);
  }
  profile::ProfileCache warm_cache;
  ASSERT_TRUE(warm_cache.load_store_if_exists(dir));
  ExperimentRunner warm_engine(warm_cache, 2, tiny_suite());
  const std::string warm = serialize(warm_engine.run(batch));
  EXPECT_EQ(warm, cold);
  EXPECT_EQ(warm_cache.misses(), 0u)
      << "warm store must serve every profile from disk";
  EXPECT_EQ(warm_cache.model_misses(), 0u)
      << "warm store must serve the model from disk";
  // The golden property of the group-run layer: the warm policy batch
  // (Serial, Even, ILP, ILP+SMRA groups alike) simulates ZERO groups and
  // still rendered byte-identically above — slowdowns are recomputed from
  // solo cycles, not replayed from the records.
  EXPECT_EQ(warm_cache.group_misses(), 0u)
      << "warm store must serve every group run from disk";
  EXPECT_GT(warm_cache.group_hits(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ExperimentTest, RepetitionStatistics) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 2, tiny_suite());
  ScenarioSpec spec;
  spec.name = "stats";
  spec.config = small_gpu();
  spec.thresholds = tiny_thresholds();
  spec.queue = QueueSpec::Distribution(sched::QueueDistribution::kEqual, 4, 5);
  spec.policy = sched::Policy::kEven;
  spec.nc = 2;
  spec.repetitions = 3;
  const auto seeded = engine.run_one(spec);
  const RepStats stp = seeded.throughput_stats();
  const RepStats cyc = seeded.cycles_stats();
  EXPECT_GT(stp.mean, 0.0);
  EXPECT_GT(cyc.mean, 0.0);
  EXPECT_GE(stp.stddev, 0.0);
  EXPECT_DOUBLE_EQ(stp.mean, seeded.mean_device_throughput());

  // Explicit queues are not re-drawn: identical repetitions, zero spread.
  ScenarioSpec fixed = spec;
  fixed.name = "fixed";
  fixed.queue = QueueSpec::Explicit(
      {kernel("cpu", 0.02, 2), kernel("mem", 0.3, 1)});
  const auto result = engine.run_one(fixed);
  EXPECT_DOUBLE_EQ(result.throughput_stats().stddev, 0.0);
  EXPECT_DOUBLE_EQ(result.cycles_stats().stddev, 0.0);
}

TEST(ExperimentTest, BatchErrorStillPropagatesFromThePool) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 4, tiny_suite());
  // One poisoned scenario in a parallel batch: run() must rethrow it (and
  // the fail-fast flag stops idle workers from simulating the remainder).
  auto batch = mixed_batch();
  ScenarioSpec bad;
  bad.name = "bad";
  bad.config = small_gpu();
  bad.thresholds = tiny_thresholds();
  bad.queue = QueueSpec::Explicit(
      {kernel("dup", 0.3, 1), kernel("dup", 0.02, 2)});  // aliased names
  bad.policy = sched::Policy::kEven;
  bad.nc = 2;
  batch.insert(batch.begin(), bad);
  EXPECT_THROW(engine.run(batch), std::logic_error);
}

TEST(ExperimentTest, SharedCacheMakesSecondBatchPureHits) {
  profile::ProfileCache cache;
  ExperimentRunner engine(cache, 2, tiny_suite());
  ScenarioSpec spec;
  spec.name = "one";
  spec.config = small_gpu();
  spec.thresholds = tiny_thresholds();
  spec.queue = QueueSpec::Suite();
  spec.policy = sched::Policy::kSerial;
  spec.nc = 2;
  engine.run_one(spec);
  const uint64_t misses_after_first = cache.misses();
  EXPECT_GT(misses_after_first, 0u);

  // Fresh engine, same cache: the offline stage must be free.
  ExperimentRunner second(cache, 2, tiny_suite());
  second.run_one(spec);
  EXPECT_EQ(cache.misses(), misses_after_first);
}

}  // namespace
}  // namespace gpumas::exp
