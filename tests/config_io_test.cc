// Tests for GpuConfig text serialization.
#include "sim/config_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace gpumas::sim {
namespace {

TEST(ConfigIoTest, RoundTripsDefaults) {
  GpuConfig original;
  GpuConfig parsed;
  parsed.num_sms = 1;  // will be overwritten by the parse
  config_from_string(config_to_string(original), parsed);
  EXPECT_EQ(parsed.num_sms, original.num_sms);
  EXPECT_EQ(parsed.max_warps_per_sm, original.max_warps_per_sm);
  EXPECT_EQ(parsed.l2.size_bytes, original.l2.size_bytes);
  EXPECT_EQ(parsed.row_miss_cycles, original.row_miss_cycles);
  EXPECT_DOUBLE_EQ(parsed.core_freq_ghz, original.core_freq_ghz);
  EXPECT_EQ(parsed.warp_sched, original.warp_sched);
  EXPECT_EQ(parsed.mem_sched, original.mem_sched);
}

TEST(ConfigIoTest, PartialUpdateKeepsOtherFields) {
  GpuConfig cfg;
  config_from_string("num_sms = 15\nl2_size_bytes = 524288\n", cfg);
  EXPECT_EQ(cfg.num_sms, 15);
  EXPECT_EQ(cfg.l2.size_bytes, 524288u);
  EXPECT_EQ(cfg.max_warps_per_sm, GpuConfig{}.max_warps_per_sm);
}

TEST(ConfigIoTest, CommentsAndBlankLinesIgnored) {
  GpuConfig cfg;
  config_from_string("# a comment\n\n  num_sms = 8  # trailing comment\n",
                     cfg);
  EXPECT_EQ(cfg.num_sms, 8);
}

TEST(ConfigIoTest, EnumFieldsParse) {
  GpuConfig cfg;
  config_from_string("warp_sched = lrr\nmem_sched = fcfs\n", cfg);
  EXPECT_EQ(cfg.warp_sched, WarpSchedPolicy::kLrr);
  EXPECT_EQ(cfg.mem_sched, MemSchedPolicy::kFcfs);
}

TEST(ConfigIoTest, NonDefaultConfigRoundTrips) {
  // config -> string -> config over a config that differs from the default
  // in every field family (geometry, enums, caches, DRAM, guard).
  GpuConfig original;
  original.num_sms = 42;
  original.core_freq_ghz = 1.215;
  original.warp_sched = WarpSchedPolicy::kLrr;
  original.mem_sched = MemSchedPolicy::kFcfs;
  original.alu_dep_latency = 14;
  original.l1d.size_bytes = 32 * 1024;
  original.l1d.ways = 8;
  original.l2.size_bytes = 1536 * 1024;
  original.l2.mshr_entries = 96;
  original.num_channels = 8;
  original.row_miss_cycles = 40;
  original.channel_queue_size = 64;
  original.max_cycles = 123456789;

  GpuConfig parsed;
  config_from_string(config_to_string(original), parsed);
  EXPECT_EQ(config_to_string(parsed), config_to_string(original));
  EXPECT_EQ(parsed.num_sms, 42);
  EXPECT_DOUBLE_EQ(parsed.core_freq_ghz, 1.215);
  EXPECT_EQ(parsed.warp_sched, WarpSchedPolicy::kLrr);
  EXPECT_EQ(parsed.mem_sched, MemSchedPolicy::kFcfs);
  EXPECT_EQ(parsed.l1d.size_bytes, 32u * 1024u);
  EXPECT_EQ(parsed.l2.mshr_entries, 96u);
  EXPECT_EQ(parsed.max_cycles, 123456789u);
}

TEST(ConfigIoTest, DuplicateKeyLastWins) {
  GpuConfig cfg;
  config_from_string("num_sms = 8\nnum_sms = 24\n", cfg);
  EXPECT_EQ(cfg.num_sms, 24);
}

TEST(ConfigIoTest, TrailingWhitespaceAccepted) {
  GpuConfig cfg;
  config_from_string("num_sms = 16   \t\r\nwarp_sched =  lrr \t\n", cfg);
  EXPECT_EQ(cfg.num_sms, 16);
  EXPECT_EQ(cfg.warp_sched, WarpSchedPolicy::kLrr);
}

TEST(ConfigIoTest, EmptyValueThrows) {
  GpuConfig cfg;
  EXPECT_THROW(config_from_string("num_sms = \n", cfg), std::logic_error);
  EXPECT_THROW(config_from_string("num_sms =\n", cfg), std::logic_error);
  EXPECT_THROW(config_from_string("warp_sched = \n", cfg), std::logic_error);
  EXPECT_THROW(config_from_string(" = 5\n", cfg), std::logic_error);
}

TEST(ConfigIoTest, UnknownKeyThrows) {
  GpuConfig cfg;
  EXPECT_THROW(config_from_string("frobnicate = 3\n", cfg),
               std::logic_error);
}

TEST(ConfigIoTest, MalformedValueThrows) {
  GpuConfig cfg;
  EXPECT_THROW(config_from_string("num_sms = sixty\n", cfg),
               std::logic_error);
  EXPECT_THROW(config_from_string("num_sms 60\n", cfg), std::logic_error);
  EXPECT_THROW(config_from_string("num_sms = 60 extra\n", cfg),
               std::logic_error);
}

TEST(ConfigIoTest, FileRoundTrip) {
  GpuConfig original;
  original.num_sms = 30;
  original.warp_sched = WarpSchedPolicy::kLrr;
  const std::string path = "/tmp/gpumas_config_test.cfg";
  save_config(path, original);
  const GpuConfig loaded = load_config(path);
  EXPECT_EQ(loaded.num_sms, 30);
  EXPECT_EQ(loaded.warp_sched, WarpSchedPolicy::kLrr);
  std::remove(path.c_str());
}

TEST(ConfigIoTest, MissingFileThrows) {
  EXPECT_THROW(load_config("/nonexistent/path.cfg"), std::logic_error);
}

TEST(ConfigIoTest, DerivedQuantitiesFollowParsedValues) {
  GpuConfig cfg;
  config_from_string("num_channels = 4\ndata_bus_cycles = 2\n", cfg);
  EXPECT_NEAR(cfg.peak_bandwidth_gbps(), 4.0 / 2.0 * 128 * 0.7, 1e-9);
}

}  // namespace
}  // namespace gpumas::sim
