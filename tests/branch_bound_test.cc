// Tests for the branch-and-bound integer programming solver.
#include "ilp/branch_bound.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.h"

namespace gpumas::ilp {
namespace {

TEST(BranchBoundTest, KnapsackStyleProblem) {
  // maximize 8x + 11y + 6z s.t. 5x + 7y + 4z <= 14, x,y,z in {0,1}
  // (binary via <= 1 bounds) -> x=1, y=0... check: 5+4=9 -> 8+6=14;
  // 7+4=11 -> 11+6=17; 5+7=12 -> 19. Optimum: x=1,y=1 -> 19.
  LpProblem p;
  p.num_vars = 3;
  p.objective = {8, 11, 6};
  p.add_le({5, 7, 4}, 14);
  p.add_le({1, 0, 0}, 1);
  p.add_le({0, 1, 0}, 1);
  p.add_le({0, 0, 1}, 1);
  const IlpSolution s = solve_ilp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 19.0, 1e-7);
  EXPECT_NEAR(s.x[0], 1.0, 1e-7);
  EXPECT_NEAR(s.x[1], 1.0, 1e-7);
  EXPECT_NEAR(s.x[2], 0.0, 1e-7);
}

TEST(BranchBoundTest, IntegralityMakesADifference) {
  // LP relaxation optimum is fractional; ILP optimum differs.
  // maximize x + y s.t. 2x + 2y <= 3 -> LP: 1.5, ILP: 1.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1, 1};
  p.add_le({2, 2}, 3);
  const LpSolution lp = solve_lp(p);
  ASSERT_EQ(lp.status, LpStatus::kOptimal);
  EXPECT_NEAR(lp.objective, 1.5, 1e-7);
  const IlpSolution ilp = solve_ilp(p);
  ASSERT_EQ(ilp.status, LpStatus::kOptimal);
  EXPECT_NEAR(ilp.objective, 1.0, 1e-7);
}

TEST(BranchBoundTest, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1};
  p.add_ge({1}, 0.4);
  p.add_le({1}, 0.6);
  EXPECT_EQ(solve_ilp(p).status, LpStatus::kInfeasible);
}

TEST(BranchBoundTest, MixedIntegerRespectsContinuousVariables) {
  // x integer, y continuous: maximize x + y, x + y <= 2.5, x <= 1.7.
  // Best: x = 1, y = 1.5.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1, 1};
  p.add_le({1, 1}, 2.5);
  p.add_le({1, 0}, 1.7);
  IlpOptions opts;
  opts.integer = {true, false};
  const IlpSolution s = solve_ilp(p, opts);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.5, 1e-7);
  EXPECT_NEAR(s.x[0], std::round(s.x[0]), 1e-7);
}

TEST(BranchBoundTest, EqualityConstrainedAssignment) {
  // Two groups must be formed: x1 + x2 = 2 with weights preferring x2.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1, 3};
  p.add_eq({1, 1}, 2);
  const IlpSolution s = solve_ilp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, 6.0, 1e-7);  // x2 = 2
}

// Property: on random bounded problems, B&B equals exhaustive search.
TEST(BranchBoundTest, PropertyMatchesExhaustiveEnumeration) {
  Prng prng(777);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 2 + static_cast<int>(prng.next_below(3));  // 2..4 vars
    const int ub = 3;  // each var in 0..3
    LpProblem p;
    p.num_vars = n;
    for (int j = 0; j < n; ++j) {
      p.objective.push_back(0.1 + prng.next_double());
    }
    // One knapsack row keeps it interesting; box bounds keep it finite.
    std::vector<double> knap(static_cast<size_t>(n));
    for (auto& v : knap) v = 0.5 + prng.next_double();
    const double cap =
        2.0 + prng.next_double() * 2.0 * static_cast<double>(n);
    std::vector<double> knap_copy = knap;
    p.add_le(std::move(knap_copy), cap);
    for (int j = 0; j < n; ++j) {
      std::vector<double> row(static_cast<size_t>(n), 0.0);
      row[static_cast<size_t>(j)] = 1.0;
      p.add_le(std::move(row), ub);
    }

    const IlpSolution got = solve_ilp(p);
    ASSERT_EQ(got.status, LpStatus::kOptimal) << "trial " << trial;

    // Exhaustive search over (ub+1)^n points.
    double best = -1.0;
    std::vector<int> x(static_cast<size_t>(n), 0);
    const int total = static_cast<int>(std::pow(ub + 1, n));
    for (int code = 0; code < total; ++code) {
      int rem = code;
      double load = 0.0;
      double obj = 0.0;
      for (int j = 0; j < n; ++j) {
        x[static_cast<size_t>(j)] = rem % (ub + 1);
        rem /= (ub + 1);
        load += knap[static_cast<size_t>(j)] * x[static_cast<size_t>(j)];
        obj += p.objective[static_cast<size_t>(j)] * x[static_cast<size_t>(j)];
      }
      if (load <= cap + 1e-9 && obj > best) best = obj;
    }
    EXPECT_NEAR(got.objective, best, 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace gpumas::ilp
