// Tests for co-run measurement and the class slowdown model.
#include "interference/interference.h"

#include <gtest/gtest.h>

namespace gpumas::interference {
namespace {

using profile::AppClass;
using profile::AppProfile;

sim::GpuConfig small_gpu() {
  sim::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.num_channels = 2;
  cfg.l2.size_bytes = 64 * 1024;
  return cfg;
}

sim::KernelParams kernel(const std::string& name, double mem_ratio,
                         uint64_t seed) {
  sim::KernelParams kp;
  kp.name = name;
  kp.num_blocks = 16;
  kp.warps_per_block = 4;
  kp.insns_per_warp = 300;
  kp.mem_ratio = mem_ratio;
  kp.footprint_bytes = 8 << 20;
  kp.divergence = 2;
  kp.seed = seed;
  return kp;
}

TEST(CoRunTest, ReportsPerAppSlowdownsAgainstGivenSolos) {
  const sim::GpuConfig cfg = small_gpu();
  const auto a = kernel("a", 0.05, 1);
  const auto b = kernel("b", 0.3, 2);
  // True solo cycles.
  profile::Profiler profiler(cfg);
  const uint64_t solo_a = profiler.profile(a).solo_cycles;
  const uint64_t solo_b = profiler.profile(b).solo_cycles;

  const CoRunResult r = co_run(cfg, {a, b}, {solo_a, solo_b});
  ASSERT_EQ(r.apps.size(), 2u);
  EXPECT_GE(r.apps[0].slowdown, 0.99);  // co-run can't beat the full device
  EXPECT_GE(r.apps[1].slowdown, 0.99);
  EXPECT_EQ(r.group_cycles,
            std::max(r.apps[0].co_cycles, r.apps[1].co_cycles));
  EXPECT_GT(r.device_throughput, 0.0);
}

TEST(CoRunTest, HonorsExplicitPartition) {
  const sim::GpuConfig cfg = small_gpu();
  const auto a = kernel("a", 0.05, 1);
  const auto b = kernel("b", 0.05, 2);
  // Give app a almost everything: it should finish near its solo time.
  profile::Profiler profiler(cfg);
  const uint64_t solo_a = profiler.profile(a).solo_cycles;
  const uint64_t solo_b = profiler.profile(b).solo_cycles;
  const CoRunResult lop = co_run(cfg, {a, b}, {solo_a, solo_b}, {6, 2});
  const CoRunResult fair = co_run(cfg, {a, b}, {solo_a, solo_b}, {4, 4});
  EXPECT_LE(lop.apps[0].co_cycles, fair.apps[0].co_cycles);
  // The squeezed app must not get meaningfully faster (small deviations can
  // come from reduced contention by the co-runner's different pacing).
  EXPECT_GE(static_cast<double>(lop.apps[1].co_cycles),
            static_cast<double>(fair.apps[1].co_cycles) * 0.95);
}

TEST(SlowdownModelTest, PairwiseMeasurementFillsSampledCells) {
  const sim::GpuConfig cfg = small_gpu();
  std::vector<sim::KernelParams> kernels = {kernel("a", 0.05, 1),
                                            kernel("b", 0.3, 2)};
  profile::Profiler profiler(cfg);
  std::vector<AppProfile> profiles;
  for (const auto& k : kernels) profiles.push_back(profiler.profile(k));
  // Force distinct classes for a 2x2 corner of the matrix.
  profiles[0].cls = AppClass::kA;
  profiles[1].cls = AppClass::kM;

  const SlowdownModel model =
      SlowdownModel::measure_pairwise(cfg, kernels, profiles);
  EXPECT_EQ(model.pair_samples(AppClass::kA, AppClass::kM), 1);
  EXPECT_EQ(model.pair_samples(AppClass::kM, AppClass::kA), 1);
  EXPECT_EQ(model.pair_samples(AppClass::kM, AppClass::kM), 0);
  EXPECT_GT(model.pair_slowdown(AppClass::kA, AppClass::kM), 1.0);
  // Unsampled cells fall back to the neutral halved-device slowdown.
  EXPECT_DOUBLE_EQ(model.pair_slowdown(AppClass::kM, AppClass::kM), 2.0);
}

TEST(SlowdownModelTest, GroupSlowdownSemantics) {
  // The model's slowdown is group completion over the member's solo time,
  // so both members of a pair see the same numerator.
  const sim::GpuConfig cfg = small_gpu();
  std::vector<sim::KernelParams> kernels = {kernel("a", 0.05, 1),
                                            kernel("b", 0.3, 2)};
  profile::Profiler profiler(cfg);
  std::vector<AppProfile> profiles;
  for (const auto& k : kernels) profiles.push_back(profiler.profile(k));
  profiles[0].cls = AppClass::kA;
  profiles[1].cls = AppClass::kM;
  const SlowdownModel model =
      SlowdownModel::measure_pairwise(cfg, kernels, profiles);
  const CoRunResult r =
      co_run(cfg, kernels,
             {profiles[0].solo_cycles, profiles[1].solo_cycles});
  EXPECT_NEAR(model.pair_slowdown(AppClass::kA, AppClass::kM),
              static_cast<double>(r.group_cycles) /
                  static_cast<double>(profiles[0].solo_cycles),
              1e-9);
}

TEST(SlowdownModelTest, AdditiveCompositionForMultiway) {
  SlowdownModel model;
  model.set_pair_slowdown(AppClass::kA, AppClass::kM, 1.8);
  model.set_pair_slowdown(AppClass::kA, AppClass::kC, 1.3);
  // S(A | {M, C}) = 1 + 0.8 + 0.3 = 2.1 without measured triples.
  EXPECT_NEAR(model.slowdown(AppClass::kA, {AppClass::kM, AppClass::kC}),
              2.1, 1e-9);
  // Order of the co-runner list must not matter.
  EXPECT_NEAR(model.slowdown(AppClass::kA, {AppClass::kC, AppClass::kM}),
              2.1, 1e-9);
}

TEST(SlowdownModelTest, SingleCoRunnerUsesPairEntryDirectly) {
  SlowdownModel model;
  model.set_pair_slowdown(AppClass::kC, AppClass::kM, 2.4);
  EXPECT_DOUBLE_EQ(model.slowdown(AppClass::kC, {AppClass::kM}), 2.4);
}

}  // namespace
}  // namespace gpumas::interference
