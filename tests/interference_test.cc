// Tests for co-run measurement and the class slowdown model.
#include "interference/interference.h"

#include <gtest/gtest.h>

#include "profile/profile_cache.h"

namespace gpumas::interference {
namespace {

using profile::AppClass;
using profile::AppProfile;

sim::GpuConfig small_gpu() {
  sim::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.num_channels = 2;
  cfg.l2.size_bytes = 64 * 1024;
  return cfg;
}

sim::KernelParams kernel(const std::string& name, double mem_ratio,
                         uint64_t seed) {
  sim::KernelParams kp;
  kp.name = name;
  kp.num_blocks = 16;
  kp.warps_per_block = 4;
  kp.insns_per_warp = 300;
  kp.mem_ratio = mem_ratio;
  kp.footprint_bytes = 8 << 20;
  kp.divergence = 2;
  kp.seed = seed;
  return kp;
}

TEST(CoRunTest, ReportsPerAppSlowdownsAgainstGivenSolos) {
  const sim::GpuConfig cfg = small_gpu();
  const auto a = kernel("a", 0.05, 1);
  const auto b = kernel("b", 0.3, 2);
  // True solo cycles.
  profile::Profiler profiler(cfg);
  const uint64_t solo_a = profiler.profile(a).solo_cycles;
  const uint64_t solo_b = profiler.profile(b).solo_cycles;

  const CoRunResult r = co_run(cfg, {a, b}, {solo_a, solo_b});
  ASSERT_EQ(r.apps.size(), 2u);
  EXPECT_GE(r.apps[0].slowdown, 0.99);  // co-run can't beat the full device
  EXPECT_GE(r.apps[1].slowdown, 0.99);
  EXPECT_EQ(r.group_cycles,
            std::max(r.apps[0].co_cycles, r.apps[1].co_cycles));
  EXPECT_GT(r.device_throughput, 0.0);
}

TEST(CoRunTest, HonorsExplicitPartition) {
  const sim::GpuConfig cfg = small_gpu();
  const auto a = kernel("a", 0.05, 1);
  const auto b = kernel("b", 0.05, 2);
  // Give app a almost everything: it should finish near its solo time.
  profile::Profiler profiler(cfg);
  const uint64_t solo_a = profiler.profile(a).solo_cycles;
  const uint64_t solo_b = profiler.profile(b).solo_cycles;
  const CoRunResult lop = co_run(cfg, {a, b}, {solo_a, solo_b}, {6, 2});
  const CoRunResult fair = co_run(cfg, {a, b}, {solo_a, solo_b}, {4, 4});
  EXPECT_LE(lop.apps[0].co_cycles, fair.apps[0].co_cycles);
  // The squeezed app must not get meaningfully faster (small deviations can
  // come from reduced contention by the co-runner's different pacing).
  EXPECT_GE(static_cast<double>(lop.apps[1].co_cycles),
            static_cast<double>(fair.apps[1].co_cycles) * 0.95);
}

TEST(CoRunTest, MemberOrderDoesNotChangeTheSimulation) {
  // co_run canonicalizes the launch order, so (A,B) and (B,A) are the same
  // co-run with permuted per-app reports — the property that lets the
  // group cache halve the pairwise matrix.
  const sim::GpuConfig cfg = small_gpu();
  const auto a = kernel("a", 0.05, 1);
  const auto b = kernel("b", 0.3, 2);
  profile::Profiler profiler(cfg);
  const uint64_t solo_a = profiler.profile(a).solo_cycles;
  const uint64_t solo_b = profiler.profile(b).solo_cycles;

  const CoRunResult ab = co_run(cfg, {a, b}, {solo_a, solo_b});
  const CoRunResult ba = co_run(cfg, {b, a}, {solo_b, solo_a});
  EXPECT_EQ(ab.group_cycles, ba.group_cycles);
  EXPECT_EQ(ab.total_thread_insns, ba.total_thread_insns);
  EXPECT_DOUBLE_EQ(ab.device_throughput, ba.device_throughput);
  ASSERT_EQ(ab.apps.size(), 2u);
  EXPECT_EQ(ab.apps[0].name, ba.apps[1].name);
  EXPECT_EQ(ab.apps[0].co_cycles, ba.apps[1].co_cycles);
  EXPECT_EQ(ab.apps[1].co_cycles, ba.apps[0].co_cycles);
  EXPECT_DOUBLE_EQ(ab.apps[0].slowdown, ba.apps[1].slowdown);
}

TEST(SlowdownModelTest, PairwiseMeasurementFillsSampledCells) {
  const sim::GpuConfig cfg = small_gpu();
  std::vector<sim::KernelParams> kernels = {kernel("a", 0.05, 1),
                                            kernel("b", 0.3, 2)};
  profile::Profiler profiler(cfg);
  std::vector<AppProfile> profiles;
  for (const auto& k : kernels) profiles.push_back(profiler.profile(k));
  // Force distinct classes for a 2x2 corner of the matrix.
  profiles[0].cls = AppClass::kA;
  profiles[1].cls = AppClass::kM;

  const SlowdownModel model =
      SlowdownModel::measure_pairwise(cfg, kernels, profiles);
  EXPECT_EQ(model.pair_samples(AppClass::kA, AppClass::kM), 1);
  EXPECT_EQ(model.pair_samples(AppClass::kM, AppClass::kA), 1);
  EXPECT_EQ(model.pair_samples(AppClass::kM, AppClass::kM), 0);
  EXPECT_GT(model.pair_slowdown(AppClass::kA, AppClass::kM), 1.0);
  // Unsampled cells fall back to the neutral halved-device slowdown.
  EXPECT_DOUBLE_EQ(model.pair_slowdown(AppClass::kM, AppClass::kM), 2.0);
}

TEST(SlowdownModelTest, GroupSlowdownSemantics) {
  // The model's slowdown is group completion over the member's solo time,
  // so both members of a pair see the same numerator.
  const sim::GpuConfig cfg = small_gpu();
  std::vector<sim::KernelParams> kernels = {kernel("a", 0.05, 1),
                                            kernel("b", 0.3, 2)};
  profile::Profiler profiler(cfg);
  std::vector<AppProfile> profiles;
  for (const auto& k : kernels) profiles.push_back(profiler.profile(k));
  profiles[0].cls = AppClass::kA;
  profiles[1].cls = AppClass::kM;
  const SlowdownModel model =
      SlowdownModel::measure_pairwise(cfg, kernels, profiles);
  const CoRunResult r =
      co_run(cfg, kernels,
             {profiles[0].solo_cycles, profiles[1].solo_cycles});
  EXPECT_NEAR(model.pair_slowdown(AppClass::kA, AppClass::kM),
              static_cast<double>(r.group_cycles) /
                  static_cast<double>(profiles[0].solo_cycles),
              1e-9);
}

TEST(SlowdownModelTest, SymmetricPairsShareOneSimulation) {
  // The ordered pairs (a,b) and (b,a) fill two matrix cells from ONE co-run
  // simulation: measured through the store, a two-app suite costs exactly
  // one group miss, and both cells divide the same group completion by
  // their own member's solo time.
  const sim::GpuConfig cfg = small_gpu();
  std::vector<sim::KernelParams> kernels = {kernel("a", 0.05, 1),
                                            kernel("b", 0.3, 2)};
  profile::Profiler profiler(cfg);
  std::vector<AppProfile> profiles;
  for (const auto& k : kernels) profiles.push_back(profiler.profile(k));
  profiles[0].cls = AppClass::kA;
  profiles[1].cls = AppClass::kM;

  profile::ProfileCache cache;
  const SlowdownModel model =
      SlowdownModel::measure_pairwise(cfg, kernels, profiles, 0, &cache);
  EXPECT_EQ(cache.group_misses(), 1u)
      << "one unordered pair = one simulation";
  EXPECT_EQ(cache.group_hits(), 0u)
      << "the mirrored cell is deduped in the plan, before the cache";
  EXPECT_EQ(model.pair_samples(AppClass::kA, AppClass::kM), 1);
  EXPECT_EQ(model.pair_samples(AppClass::kM, AppClass::kA), 1);
  // Both cells come from the same group completion cycle.
  EXPECT_NEAR(model.pair_slowdown(AppClass::kA, AppClass::kM) *
                  static_cast<double>(profiles[0].solo_cycles),
              model.pair_slowdown(AppClass::kM, AppClass::kA) *
                  static_cast<double>(profiles[1].solo_cycles),
              1e-6);

  // And the model itself is identical to a cache-less measurement.
  EXPECT_EQ(model.to_string(),
            SlowdownModel::measure_pairwise(cfg, kernels, profiles)
                .to_string());
}

TEST(SlowdownModelTest, ColdMeasurementStaysWithinTheSimulationBudget) {
  // Acceptance bound: a cold pairwise measurement over n suite apps may
  // simulate at most n(n+1)/2 + n groups (with symmetric dedupe it
  // actually needs n(n-1)/2 distinct pairs here).
  const sim::GpuConfig cfg = small_gpu();
  std::vector<sim::KernelParams> kernels = {
      kernel("a", 0.05, 1), kernel("b", 0.3, 2), kernel("c", 0.15, 3),
      kernel("d", 0.02, 4)};
  profile::Profiler profiler(cfg);
  std::vector<AppProfile> profiles;
  for (const auto& k : kernels) profiles.push_back(profiler.profile(k));
  profiles[0].cls = AppClass::kA;
  profiles[1].cls = AppClass::kM;
  profiles[2].cls = AppClass::kC;
  profiles[3].cls = AppClass::kA;  // a duplicated class, like a real suite

  profile::ProfileCache cache;
  const SlowdownModel model =
      SlowdownModel::measure_pairwise(cfg, kernels, profiles, 0, &cache);
  const uint64_t n = kernels.size();
  EXPECT_EQ(cache.group_misses(), n * (n - 1) / 2);
  EXPECT_LE(cache.group_misses(), n * (n + 1) / 2 + n);
  // Every ordered pair still contributed a sample to its cell.
  EXPECT_EQ(model.total_pair_samples(), static_cast<int>(n * (n - 1)));
}

TEST(SlowdownModelTest, ParallelMeasurementIsByteIdenticalToSerial) {
  const sim::GpuConfig cfg = small_gpu();
  std::vector<sim::KernelParams> kernels = {
      kernel("a", 0.05, 1), kernel("b", 0.3, 2), kernel("c", 0.15, 3)};
  profile::Profiler profiler(cfg);
  std::vector<AppProfile> profiles;
  for (const auto& k : kernels) profiles.push_back(profiler.profile(k));
  profiles[0].cls = AppClass::kA;
  profiles[1].cls = AppClass::kM;
  profiles[2].cls = AppClass::kC;

  SlowdownModel serial =
      SlowdownModel::measure_pairwise(cfg, kernels, profiles, 0, nullptr, 1);
  serial.measure_triples(cfg, kernels, profiles, nullptr, 1);
  SlowdownModel parallel =
      SlowdownModel::measure_pairwise(cfg, kernels, profiles, 0, nullptr, 4);
  parallel.measure_triples(cfg, kernels, profiles, nullptr, 4);
  EXPECT_EQ(serial.to_string(), parallel.to_string());
}

TEST(SlowdownModelTest, AdditiveCompositionForMultiway) {
  SlowdownModel model;
  model.set_pair_slowdown(AppClass::kA, AppClass::kM, 1.8);
  model.set_pair_slowdown(AppClass::kA, AppClass::kC, 1.3);
  // S(A | {M, C}) = 1 + 0.8 + 0.3 = 2.1 without measured triples.
  EXPECT_NEAR(model.slowdown(AppClass::kA, {AppClass::kM, AppClass::kC}),
              2.1, 1e-9);
  // Order of the co-runner list must not matter.
  EXPECT_NEAR(model.slowdown(AppClass::kA, {AppClass::kC, AppClass::kM}),
              2.1, 1e-9);
}

TEST(SlowdownModelTest, SingleCoRunnerUsesPairEntryDirectly) {
  SlowdownModel model;
  model.set_pair_slowdown(AppClass::kC, AppClass::kM, 2.4);
  EXPECT_DOUBLE_EQ(model.slowdown(AppClass::kC, {AppClass::kM}), 2.4);
}

// A measured model (including multi-way entries) must survive the
// key=value round trip exactly: every pairwise cell, every sample count,
// and every multi-way entry.
TEST(SlowdownModelSerializationTest, RoundTripPreservesEverything) {
  const sim::GpuConfig cfg = small_gpu();
  std::vector<sim::KernelParams> kernels = {
      kernel("a", 0.05, 1), kernel("b", 0.3, 2), kernel("c", 0.15, 3)};
  profile::Profiler profiler(cfg);
  std::vector<AppProfile> profiles;
  for (const auto& k : kernels) profiles.push_back(profiler.profile(k));
  profiles[0].cls = AppClass::kA;
  profiles[1].cls = AppClass::kM;
  profiles[2].cls = AppClass::kC;

  SlowdownModel model = SlowdownModel::measure_pairwise(cfg, kernels, profiles);
  model.measure_triples(cfg, kernels, profiles);
  ASSERT_GT(model.multi_entries(), 0u);

  const SlowdownModel back = SlowdownModel::from_string(model.to_string());
  for (int a = 0; a < profile::kNumClasses; ++a) {
    for (int b = 0; b < profile::kNumClasses; ++b) {
      const auto ca = static_cast<AppClass>(a);
      const auto cb = static_cast<AppClass>(b);
      EXPECT_DOUBLE_EQ(back.pair_slowdown(ca, cb),
                       model.pair_slowdown(ca, cb));
      EXPECT_EQ(back.pair_samples(ca, cb), model.pair_samples(ca, cb));
    }
  }
  EXPECT_EQ(back.multi_entries(), model.multi_entries());
  EXPECT_EQ(back.total_pair_samples(), model.total_pair_samples());
  // Multi-way lookups (which hit the measured entries) agree exactly.
  for (int me = 0; me < profile::kNumClasses; ++me) {
    for (int a = 0; a < profile::kNumClasses; ++a) {
      for (int b = 0; b < profile::kNumClasses; ++b) {
        const std::vector<AppClass> others{static_cast<AppClass>(a),
                                           static_cast<AppClass>(b)};
        EXPECT_DOUBLE_EQ(back.slowdown(static_cast<AppClass>(me), others),
                         model.slowdown(static_cast<AppClass>(me), others));
      }
    }
  }
  // And the rendering itself is stable.
  EXPECT_EQ(back.to_string(), model.to_string());
}

// A model with every pairwise cell populated, so its rendering is valid.
SlowdownModel dense_model() {
  SlowdownModel model;
  for (int a = 0; a < profile::kNumClasses; ++a) {
    for (int b = 0; b < profile::kNumClasses; ++b) {
      model.set_pair_slowdown(static_cast<AppClass>(a),
                              static_cast<AppClass>(b),
                              1.0 + 0.1 * (a * profile::kNumClasses + b));
    }
  }
  return model;
}

TEST(SlowdownModelSerializationTest, RejectsPartialRendering) {
  const SlowdownModel model = dense_model();
  std::string text = model.to_string();
  // Drop the first line (a pair_ cell): the model is now incomplete.
  text = text.substr(text.find('\n') + 1);
  EXPECT_THROW(SlowdownModel::from_string(text), std::logic_error);
}

TEST(SlowdownModelSerializationTest, RejectsUnknownKeyAndBadValues) {
  const SlowdownModel model = dense_model();
  // The unmodified rendering parses.
  EXPECT_NO_THROW(SlowdownModel::from_string(model.to_string()));
  EXPECT_THROW(
      SlowdownModel::from_string(model.to_string() + "mystery = 1\n"),
      std::logic_error);
  std::string text = model.to_string();
  const size_t pos = text.find("pair_M_M = ");
  text.replace(pos, text.find('\n', pos) - pos, "pair_M_M = banana");
  EXPECT_THROW(SlowdownModel::from_string(text), std::logic_error);
  // A zeroed cell must be rejected too: a legit model is strictly positive.
  std::string zeroed = model.to_string();
  const size_t zpos = zeroed.find("pair_M_M = ");
  zeroed.replace(zpos, zeroed.find('\n', zpos) - zpos, "pair_M_M = 0");
  EXPECT_THROW(SlowdownModel::from_string(zeroed), std::logic_error);
}

TEST(SlowdownModelSerializationTest, RejectsMultiCountMismatch) {
  const SlowdownModel model = dense_model();
  // Claim one multi entry but provide none.
  std::string text = model.to_string();
  const size_t pos = text.find("multi_count = 0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("multi_count = 0").size(),
               "multi_count = 1");
  EXPECT_THROW(SlowdownModel::from_string(text), std::logic_error);
}

}  // namespace
}  // namespace gpumas::interference
