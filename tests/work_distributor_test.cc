// Unit tests for the work distributor: ownership, drain-based
// repartitioning, and dispatch invariants.
#include "sim/work_distributor.h"

#include <gtest/gtest.h>

#include "sim/gpu_config.h"

namespace gpumas::sim {
namespace {

GpuConfig tiny_cfg() {
  GpuConfig cfg;
  cfg.num_sms = 4;
  cfg.max_blocks_per_sm = 2;
  cfg.max_warps_per_sm = 8;
  return cfg;
}

KernelParams kernel(int blocks, int wpb) {
  KernelParams kp;
  kp.name = "wd";
  kp.num_blocks = blocks;
  kp.warps_per_block = wpb;
  kp.insns_per_warp = 100;
  kp.mem_ratio = 0.0;
  kp.seed = 9;
  return kp;
}

struct Fixture {
  GpuConfig cfg = tiny_cfg();
  std::vector<StreamingMultiprocessor> sms;
  std::vector<LaunchedApp> apps;
  WorkDistributor wd{4};

  Fixture() {
    for (int i = 0; i < cfg.num_sms; ++i) sms.emplace_back(cfg, i);
  }

  void add_app(int blocks, int wpb) {
    LaunchedApp la;
    la.kernel = kernel(blocks, wpb);
    la.base_line = (apps.size() + 1) << 30;
    apps.push_back(la);
  }
};

TEST(WorkDistributorTest, OwnershipAssignmentAndCounts) {
  Fixture f;
  f.add_app(4, 2);
  f.add_app(4, 2);
  f.wd.set_owner(0, 0);
  f.wd.set_owner(1, 0);
  f.wd.set_owner(2, 1);
  f.wd.set_owner(3, 1);
  const auto counts = f.wd.partition_counts(2);
  EXPECT_EQ(counts, (std::vector<int>{2, 2}));
  EXPECT_EQ(f.wd.owner(0), 0);
  EXPECT_EQ(f.wd.owner(3), 1);
}

TEST(WorkDistributorTest, DispatchOnlyToOwnedSms) {
  Fixture f;
  f.add_app(8, 2);
  f.wd.set_owner(0, 0);
  f.wd.set_owner(1, 0);
  f.wd.set_owner(2, -1);  // unowned: must stay empty
  f.wd.set_owner(3, -1);
  for (int i = 0; i < 4; ++i) f.wd.dispatch(f.sms, f.apps);
  EXPECT_GT(f.sms[0].resident_blocks(), 0);
  EXPECT_GT(f.sms[1].resident_blocks(), 0);
  EXPECT_EQ(f.sms[2].resident_blocks(), 0);
  EXPECT_EQ(f.sms[3].resident_blocks(), 0);
}

TEST(WorkDistributorTest, DispatchRespectsBlockSlotLimit) {
  Fixture f;
  f.add_app(16, 2);  // more blocks than the device holds
  for (int sm = 0; sm < 4; ++sm) f.wd.set_owner(sm, 0);
  for (int i = 0; i < 10; ++i) f.wd.dispatch(f.sms, f.apps);
  for (const auto& sm : f.sms) {
    EXPECT_LE(sm.resident_blocks(), f.cfg.max_blocks_per_sm);
  }
  // 4 SMs x 2 block slots = 8 resident; the rest must wait.
  EXPECT_EQ(f.apps[0].next_block, 8u);
}

TEST(WorkDistributorTest, AtMostOneBlockPerSmPerCycle) {
  Fixture f;
  f.add_app(8, 2);
  for (int sm = 0; sm < 4; ++sm) f.wd.set_owner(sm, 0);
  f.wd.dispatch(f.sms, f.apps);
  // First dispatch round: exactly one block per SM.
  for (const auto& sm : f.sms) EXPECT_EQ(sm.resident_blocks(), 1);
}

TEST(WorkDistributorTest, PendingOwnerBlocksNewDispatch) {
  Fixture f;
  f.add_app(8, 2);
  f.add_app(8, 2);
  f.wd.set_owner(0, 0);
  f.wd.dispatch(f.sms, f.apps);
  ASSERT_EQ(f.sms[0].resident_blocks(), 1);
  // Request reassignment while a block is resident: the SM gets no new
  // blocks from either app until it drains.
  f.wd.request_owner(0, 1);
  EXPECT_EQ(f.wd.pending_owner(0), 1);
  EXPECT_EQ(f.wd.effective_owner(0), 1);
  f.wd.dispatch(f.sms, f.apps);
  EXPECT_EQ(f.sms[0].resident_blocks(), 1) << "no dispatch while draining";
  EXPECT_EQ(f.wd.owner(0), 0) << "flip only after drain";
}

TEST(WorkDistributorTest, FlipHappensOnceDrained) {
  Fixture f;
  f.add_app(1, 2);
  f.add_app(8, 2);
  f.wd.set_owner(0, 0);
  f.wd.dispatch(f.sms, f.apps);
  f.wd.request_owner(0, 1);
  // Run the resident block to completion against a stub fabric that
  // accepts every request (the kernel is pure compute anyway).
  std::vector<AppStats> stats(2);
  struct Stub final : MemoryFabric {
    bool try_send(const MemRequest&, uint64_t) override { return true; }
  } fabric;
  uint64_t cycle = 0;
  while (f.sms[0].resident_blocks() > 0 && cycle < 100000) {
    f.sms[0].tick(cycle++, fabric, stats);
  }
  ASSERT_EQ(f.sms[0].resident_blocks(), 0);
  f.wd.dispatch(f.sms, f.apps);
  EXPECT_EQ(f.wd.owner(0), 1);
  EXPECT_EQ(f.wd.pending_owner(0), -1);
  // And the new owner's block landed.
  EXPECT_EQ(f.sms[0].resident_blocks(), 1);
}

TEST(WorkDistributorTest, RequestBackToCurrentOwnerCancelsPendingMove) {
  Fixture f;
  f.add_app(4, 2);
  f.add_app(4, 2);
  f.wd.set_owner(0, 0);
  f.wd.request_owner(0, 1);
  ASSERT_EQ(f.wd.pending_owner(0), 1);
  f.wd.request_owner(0, 0);  // change of plan
  EXPECT_EQ(f.wd.pending_owner(0), -1);
  EXPECT_EQ(f.wd.effective_owner(0), 0);
}

TEST(WorkDistributorTest, PartitionCountsUsePendingOwnership) {
  Fixture f;
  f.add_app(4, 2);
  f.add_app(4, 2);
  for (int sm = 0; sm < 4; ++sm) f.wd.set_owner(sm, 0);
  f.wd.request_owner(0, 1);
  f.wd.request_owner(1, 1);
  EXPECT_EQ(f.wd.partition_counts(2), (std::vector<int>{2, 2}));
}

TEST(WorkDistributorTest, AllDispatchedStopsFurtherBlocks) {
  Fixture f;
  f.add_app(2, 2);
  for (int sm = 0; sm < 4; ++sm) f.wd.set_owner(sm, 0);
  f.wd.dispatch(f.sms, f.apps);
  EXPECT_TRUE(f.apps[0].all_dispatched());
  const uint32_t before = f.apps[0].next_block;
  f.wd.dispatch(f.sms, f.apps);
  EXPECT_EQ(f.apps[0].next_block, before);
}

}  // namespace
}  // namespace gpumas::sim
