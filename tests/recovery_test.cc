// Crash-safety and recovery tests: the atomic file writer, the
// deterministic fault injector, store-entry quarantine, and the bench
// harness's checkpoint/--resume path. Crash clauses are exercised through
// gtest death tests — the forked child _Exit()s at the injected point and
// the parent inspects the files the "crash" left behind, exactly what the
// chaos CI job does with whole processes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/atomic_file.h"
#include "common/fault_inject.h"
#include "common/parallel.h"
#include "exp/scenario.h"
#include "profile/profile_cache.h"

namespace gpumas {
namespace {

namespace fs = std::filesystem;
using common::FaultInjector;
using common::FaultSite;

// Every test leaves the process-wide injector disarmed: the suite shares
// one process, and a leaked clause would fire in an unrelated test.
struct FaultGuard {
  ~FaultGuard() { FaultInjector::instance().reset(); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string test_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/gpumas_recovery_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

sim::GpuConfig small_gpu() {
  sim::GpuConfig cfg;
  cfg.num_sms = 12;
  cfg.num_channels = 2;
  cfg.l2.size_bytes = 64 * 1024;
  return cfg;
}

sim::KernelParams kernel(const std::string& name, double mem_ratio,
                         uint64_t seed) {
  sim::KernelParams kp;
  kp.name = name;
  kp.num_blocks = 10;
  kp.warps_per_block = 4;
  kp.insns_per_warp = 250;
  kp.mem_ratio = mem_ratio;
  kp.footprint_bytes = 8 << 20;
  kp.divergence = 2;
  kp.seed = seed;
  return kp;
}

// ---------------------------------------------------------------- atomic

TEST(AtomicFileTest, CommitReplacesAndNoCommitLeavesTarget) {
  const std::string dir = test_dir("atomic_basic");
  const std::string path = dir + "/artifact.txt";
  common::atomic_write_file(path, "old content\n");
  ASSERT_EQ(read_file(path), "old content\n");

  {
    common::AtomicFile w(path);
    w.stream() << "abandoned\n";
    // No commit(): the target must be untouched.
  }
  EXPECT_EQ(read_file(path), "old content\n");

  common::AtomicFile w(path);
  w.stream() << "new content\n";
  w.commit();
  EXPECT_EQ(read_file(path), "new content\n");
  EXPECT_THROW(w.commit(), std::runtime_error);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicFileTest, InjectedWriteFailureLeavesTargetUntouched) {
  FaultGuard guard;
  const std::string dir = test_dir("atomic_fail_write");
  const std::string path = dir + "/artifact.txt";
  common::atomic_write_file(path, "survives\n");

  FaultInjector::instance().configure("fail:write:1");
  EXPECT_THROW(common::atomic_write_file(path, "lost\n"),
               std::runtime_error);
  EXPECT_EQ(read_file(path), "survives\n");
  // The failed attempt cleans up its temp file.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(FaultInjector::instance().injected(FaultSite::kFileWrite), 1u);
}

TEST(AtomicFileTest, InjectedRenameFailureLeavesTargetUntouched) {
  FaultGuard guard;
  const std::string dir = test_dir("atomic_fail_rename");
  const std::string path = dir + "/artifact.txt";
  common::atomic_write_file(path, "survives\n");

  FaultInjector::instance().configure("fail:rename:1");
  EXPECT_THROW(common::atomic_write_file(path, "lost\n"),
               std::runtime_error);
  EXPECT_EQ(read_file(path), "survives\n");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicFileTest, CrashDuringWriteTearsTempNeverTarget) {
  const std::string dir = test_dir("atomic_crash_write");
  const std::string path = dir + "/artifact.txt";
  common::atomic_write_file(path, "old content\n");

  EXPECT_EXIT(
      {
        FaultInjector::instance().configure("crash:write:1");
        common::atomic_write_file(path, "0123456789abcdef");
      },
      ::testing::ExitedWithCode(FaultInjector::kCrashExitCode), "");

  // The target still holds the old bytes; the crash artifact is a torn
  // temp file carrying half of the pending write.
  EXPECT_EQ(read_file(path), "old content\n");
  ASSERT_TRUE(fs::exists(path + ".tmp"));
  EXPECT_EQ(read_file(path + ".tmp"), "01234567");
}

TEST(JournalWriterTest, TruncateAndAppendModes) {
  const std::string dir = test_dir("journal");
  const std::string path = dir + "/run.journal";
  {
    common::JournalWriter w(path, /*truncate=*/true);
    w.append("one\n");
    w.append("two\n");
  }
  EXPECT_EQ(read_file(path), "one\ntwo\n");
  {
    common::JournalWriter w(path, /*truncate=*/false);
    w.append("three\n");
  }
  EXPECT_EQ(read_file(path), "one\ntwo\nthree\n");
  {
    common::JournalWriter w(path, /*truncate=*/true);
  }
  EXPECT_EQ(read_file(path), "");
}

// ---------------------------------------------------------------- faults

TEST(FaultInjectorTest, MalformedSpecsThrowAndDoNotHalfApply) {
  FaultGuard guard;
  FaultInjector& fi = FaultInjector::instance();
  EXPECT_THROW(fi.configure("bogus"), std::logic_error);
  EXPECT_THROW(fi.configure("fail:nosite:1"), std::logic_error);
  EXPECT_THROW(fi.configure("fail:write:0"), std::logic_error);
  EXPECT_THROW(fi.configure("flaky:write:1.5"), std::logic_error);
  EXPECT_THROW(fi.configure("seed:notanumber"), std::logic_error);
  // A malformed trailing clause must not arm the valid leading one.
  EXPECT_THROW(fi.configure("fail:write:1,wat"), std::logic_error);
  EXPECT_FALSE(fi.armed(FaultSite::kFileWrite));
  EXPECT_FALSE(fi.should_fail(FaultSite::kFileWrite));
}

TEST(FaultInjectorTest, NthHitClauseFiresExactlyOnce) {
  FaultGuard guard;
  FaultInjector& fi = FaultInjector::instance();
  fi.configure("fail:fsync:2");
  EXPECT_TRUE(fi.armed(FaultSite::kFileFsync));
  EXPECT_FALSE(fi.armed(FaultSite::kFileWrite));
  EXPECT_FALSE(fi.should_fail(FaultSite::kFileFsync));
  EXPECT_TRUE(fi.should_fail(FaultSite::kFileFsync));
  EXPECT_FALSE(fi.should_fail(FaultSite::kFileFsync));
  EXPECT_EQ(fi.hits(FaultSite::kFileFsync), 3u);
  EXPECT_EQ(fi.injected(FaultSite::kFileFsync), 1u);
}

TEST(FaultInjectorTest, FlakyDrawsAreSeededAndReproducible) {
  FaultGuard guard;
  FaultInjector& fi = FaultInjector::instance();
  const auto draw = [&](const std::string& spec) {
    fi.configure(spec);
    std::vector<bool> seq;
    for (int i = 0; i < 64; ++i) {
      seq.push_back(fi.should_fail(FaultSite::kFileOpen));
    }
    return seq;
  };
  const auto a = draw("flaky:open:0.5,seed:7");
  const auto b = draw("flaky:open:0.5,seed:7");
  const auto c = draw("flaky:open:0.5,seed:8");
  EXPECT_EQ(a, b) << "same seed must reproduce the same failure pattern";
  EXPECT_NE(a, c) << "a different seed must draw a different pattern";
  size_t failures = 0;
  for (const bool f : a) failures += f ? 1u : 0u;
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, 64u);
}

TEST(FaultInjectorTest, DispatchFaultsRetryThenExhaustDeterministically) {
  FaultGuard guard;
  FaultInjector& fi = FaultInjector::instance();

  // A single transient dispatch failure: retried in place, every element
  // still executes, nothing surfaces to the caller.
  fi.configure("fail:dispatch:2");
  std::vector<int> ran(4, 0);
  parallel_for(1, ran.size(), [&](size_t k) { ran[k] = 1; });
  EXPECT_EQ(std::count(ran.begin(), ran.end(), 1), 4);
  EXPECT_EQ(fi.injected(FaultSite::kDispatch), 1u);

  // A persistent failure (probability 1) exhausts the bounded retry
  // budget and surfaces through the fail-fast path.
  fi.configure("flaky:dispatch:1,retries:2");
  EXPECT_THROW(
      parallel_for(1, size_t{2}, [&](size_t) {}),
      std::runtime_error);
}

// ------------------------------------------------------------ quarantine

TEST(StoreRecoveryTest, CorruptEntriesAreQuarantinedReMeasuredAndHealed) {
  const std::string dir = test_dir("store_quarantine");
  const sim::GpuConfig cfg = small_gpu();
  const auto a = kernel("a", 0.05, 1);
  const auto b = kernel("b", 0.3, 2);

  profile::ProfileCache cache;
  std::vector<profile::AppProfile> profiles{cache.solo(cfg, a),
                                            cache.solo(cfg, b)};
  cache.model(cfg, {a, b}, profiles);
  cache.save_store(dir);
  const size_t groups_before = cache.group_count();
  ASSERT_GT(groups_before, 0u);

  // One corruption per member file, in three different shapes: a garbage
  // tail line glued onto the last profile entry, a stray line outside any
  // model entry, and a garbage tail on the last group entry.
  {
    std::ofstream out(dir + "/profiles.txt", std::ios::app);
    out << "this line has no equals sign\n";
  }
  {
    const std::string text = read_file(dir + "/models.txt");
    const size_t nl = text.find('\n');
    ASSERT_NE(nl, std::string::npos);
    common::atomic_write_file(
        dir + "/models.txt",
        text.substr(0, nl + 1) + "stray garbage\n" + text.substr(nl + 1));
  }
  {
    std::ofstream out(dir + "/groups.txt", std::ios::app);
    out << "torn tail of a group entry\n";
  }

  profile::ProfileCache fresh;
  ASSERT_TRUE(fresh.load_store_if_exists(dir));
  const auto q = fresh.quarantine_stats();
  EXPECT_EQ(q.profiles, 1u);
  EXPECT_EQ(q.models, 1u);
  EXPECT_EQ(q.groups, 1u);
  EXPECT_EQ(q.total(), 3u);

  // The intact entries loaded; only the corrupt ones are missing.
  EXPECT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh.model_count(), 1u);
  EXPECT_EQ(fresh.group_count(), groups_before - 1);

  // The quarantine directory holds the evidence, named by content.
  ASSERT_TRUE(fs::is_directory(dir + "/quarantine"));
  size_t quarantine_files = 0;
  for (const auto& e : fs::directory_iterator(dir + "/quarantine")) {
    (void)e;
    ++quarantine_files;
  }
  EXPECT_EQ(quarantine_files, 3u);

  // The lost profile is simply re-measured (one miss, one hit)...
  fresh.solo(cfg, a);
  fresh.solo(cfg, b);
  EXPECT_EQ(fresh.misses(), 1u);
  EXPECT_EQ(fresh.hits(), 1u);

  // ...and the next save writes healed files: a reload sees no
  // corruption and both profiles.
  fresh.save_store(dir);
  profile::ProfileCache healed;
  ASSERT_TRUE(healed.load_store_if_exists(dir));
  EXPECT_EQ(healed.quarantine_stats().total(), 0u);
  EXPECT_EQ(healed.size(), 2u);
}

TEST(StoreRecoveryTest, SchemaVersionMismatchRejectsAllOrNothing) {
  const std::string dir = test_dir("store_version");
  const sim::GpuConfig cfg = small_gpu();
  const auto a = kernel("a", 0.05, 1);
  const auto b = kernel("b", 0.3, 2);

  profile::ProfileCache cache;
  std::vector<profile::AppProfile> profiles{cache.solo(cfg, a),
                                            cache.solo(cfg, b)};
  cache.model(cfg, {a, b}, profiles);
  cache.save_store(dir);

  // Bump the version of the LAST member file only: all-or-nothing means
  // the intact profiles and models must not install either.
  const std::string text = read_file(dir + "/groups.txt");
  const std::string from = "# gpumas group-run cache v2";
  const size_t at = text.find(from);
  ASSERT_NE(at, std::string::npos);
  std::string bumped = text;
  bumped.replace(at, from.size(), "# gpumas group-run cache v9");
  common::atomic_write_file(dir + "/groups.txt", bumped);

  profile::ProfileCache fresh;
  EXPECT_THROW(fresh.load_store_if_exists(dir), std::logic_error);
  EXPECT_EQ(fresh.size(), 0u);
  EXPECT_EQ(fresh.model_count(), 0u);
  EXPECT_EQ(fresh.group_count(), 0u);
  EXPECT_EQ(fresh.quarantine_stats().total(), 0u);
}

// ---------------------------------------------------------------- resume

std::vector<exp::ScenarioSpec> tiny_batch() {
  std::vector<exp::ScenarioSpec> specs;
  const sim::GpuConfig cfg = small_gpu();
  for (int i = 0; i < 3; ++i) {
    exp::ScenarioSpec s;
    s.name = "s" + std::to_string(i);
    s.config = cfg;
    s.queue = exp::QueueSpec::Explicit(
        {kernel("a" + std::to_string(i), 0.05 + 0.1 * i, 1 + i),
         kernel("b" + std::to_string(i), 0.25, 100 + i)});
    specs.push_back(s);
  }
  return specs;
}

// Constructs a Harness from bench-style flags and runs the batch; the
// destructor (dump finalization, journal cleanup, exit-status policy)
// runs before this returns.
void run_bench(std::vector<std::string> args,
               const std::vector<exp::ScenarioSpec>& specs) {
  args.insert(args.begin(), "recovery_test_bench");
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& s : args) argv.push_back(s.data());
  bench::Harness h(static_cast<int>(argv.size()), argv.data());
  h.run(specs);
}

TEST(HarnessResumeTest, CrashMidBatchThenResumeIsByteIdentical) {
  const std::string dir = test_dir("resume_crash");
  const std::string ref = dir + "/ref.txt";
  const std::string dump = dir + "/crash.txt";
  const auto specs = tiny_batch();

  run_bench({"--threads", "1", "--dump-results", ref}, specs);
  ASSERT_FALSE(fs::exists(ref + ".journal"));
  const std::string want = read_file(ref);
  ASSERT_FALSE(want.empty());

  // Journal write hits: 1 = header, 2 = scenario s0's record, 3 =
  // scenario s1's record — crash there, tearing s1's line in half.
  EXPECT_EXIT(
      run_bench({"--threads", "1", "--dump-results", dump, "--faults",
                 "crash:write:3"},
                specs),
      ::testing::ExitedWithCode(common::FaultInjector::kCrashExitCode), "");
  ASSERT_TRUE(fs::exists(dump + ".journal"));
  ASSERT_FALSE(fs::exists(dump)) << "crashed before the batch finalized";

  // Resume: s0 is served from the journal, the torn s1 and the never-run
  // s2 re-execute, and the final dump matches the uninterrupted run byte
  // for byte. The journal is gone after clean completion.
  run_bench({"--threads", "1", "--dump-results", dump, "--resume"}, specs);
  EXPECT_EQ(read_file(dump), want);
  EXPECT_FALSE(fs::exists(dump + ".journal"));
}

TEST(HarnessResumeTest, ResumeAfterCleanCompletionIsIdempotent) {
  const std::string dir = test_dir("resume_idempotent");
  const std::string dump = dir + "/results.txt";
  const auto specs = tiny_batch();

  run_bench({"--threads", "1", "--dump-results", dump}, specs);
  const std::string want = read_file(dump);

  // The journal is gone, but the complete dump itself feeds the resume:
  // every scenario is skipped and the rewrite is a byte-level no-op.
  run_bench({"--threads", "1", "--dump-results", dump, "--resume"}, specs);
  EXPECT_EQ(read_file(dump), want);
  EXPECT_FALSE(fs::exists(dump + ".journal"));
}

TEST(HarnessResumeTest, ResumeUnderDifferentFlagsExitsTwo) {
  const std::string dir = test_dir("resume_flags");
  const std::string dump = dir + "/crash.txt";
  const auto specs = tiny_batch();

  EXPECT_EXIT(
      run_bench({"--threads", "1", "--dump-results", dump, "--faults",
                 "crash:write:3"},
                specs),
      ::testing::ExitedWithCode(common::FaultInjector::kCrashExitCode), "");

  // A different thread budget resolves a different sim_threads split, so
  // the journal's fingerprint header must refuse the resume.
  EXPECT_EXIT(
      run_bench({"--threads", "2", "--dump-results", dump, "--resume"},
                specs),
      ::testing::ExitedWithCode(2), "");
}

TEST(HarnessResumeTest, ResumeAgainstDifferentScenariosExitsTwo) {
  const std::string dir = test_dir("resume_scenarios");
  const std::string dump = dir + "/crash.txt";
  const auto specs = tiny_batch();

  EXPECT_EXIT(
      run_bench({"--threads", "1", "--dump-results", dump, "--faults",
                 "crash:write:3"},
                specs),
      ::testing::ExitedWithCode(common::FaultInjector::kCrashExitCode), "");

  // Same flags, different bench body: the reloaded record's scenario name
  // does not match the declared batch.
  auto renamed = specs;
  renamed[0].name = "not-the-same-scenario";
  EXPECT_EXIT(
      run_bench({"--threads", "1", "--dump-results", dump, "--resume"},
                renamed),
      ::testing::ExitedWithCode(2), "");
}

TEST(HarnessResumeTest, ResumeFlagValidation) {
  const auto specs = tiny_batch();
  EXPECT_EXIT(run_bench({"--resume"}, specs), ::testing::ExitedWithCode(2),
              "");
  EXPECT_EXIT(
      run_bench({"--resume", "--dump-results", "/tmp/x", "--dump-append"},
                specs),
      ::testing::ExitedWithCode(2), "");
}

TEST(HarnessResumeTest, DumpIoFailureExitsNonzero) {
  const std::string dir = test_dir("dump_io_failure");
  const std::string dump = dir + "/results.txt";
  const auto specs = tiny_batch();

  // Write hits 1-4 are the journal (header + three records); hit 5 is the
  // batch-end dump rewrite. Failing it must not abort the run — the
  // harness finishes, keeps the journal, and exits 1 instead of 0.
  EXPECT_EXIT(
      run_bench({"--threads", "1", "--dump-results", dump, "--faults",
                 "fail:write:5"},
                specs),
      ::testing::ExitedWithCode(1), "");
  EXPECT_TRUE(fs::exists(dump + ".journal"))
      << "the journal is the surviving copy of the records";
}

}  // namespace
}  // namespace gpumas
