// Tests for the detlint linter (tools/detlint.cc) and its scanner
// (common/srclex.h). The linter half drives the real built binary
// (DETLINT_BIN, injected by CMake) over the seeded fixture corpus in
// tests/detlint_fixtures/ and over the real tree, which must lint
// clean — that last assertion is the determinism contract this repo
// ships.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/srclex.h"

namespace {

using gpumas::srclex::Kind;
using gpumas::srclex::Token;
using gpumas::srclex::lex;
using gpumas::srclex::string_content;

// ---------------------------------------------------------------- srclex

TEST(SrclexTest, TokenKindsAndLines) {
  const std::vector<Token> t = lex("int x = 42;\nfoo(\"bar\", 'c');\n");
  ASSERT_EQ(t.size(), 12u);
  EXPECT_EQ(t[0].kind, Kind::kIdent);
  EXPECT_EQ(t[0].text, "int");
  EXPECT_EQ(t[0].line, 1);
  EXPECT_EQ(t[2].kind, Kind::kPunct);
  EXPECT_EQ(t[2].text, "=");
  EXPECT_EQ(t[3].kind, Kind::kNumber);
  EXPECT_EQ(t[3].text, "42");
  EXPECT_EQ(t[5].text, "foo");
  EXPECT_EQ(t[5].line, 2);
  EXPECT_EQ(t[7].kind, Kind::kString);
  EXPECT_EQ(t[7].text, "\"bar\"");
  EXPECT_EQ(t[9].kind, Kind::kChar);
  EXPECT_EQ(t[9].text, "'c'");
}

TEST(SrclexTest, MaximalMunchPunctuators) {
  const std::vector<Token> t = lex("a::b->c<<=d; x>>y; p->*q;");
  std::vector<std::string> puncts;
  for (const Token& tok : t) {
    if (tok.kind == Kind::kPunct) puncts.push_back(tok.text);
  }
  const std::vector<std::string> want = {"::", "->", "<<=", ";", ">>",
                                         ";",  "->*", ";"};
  EXPECT_EQ(puncts, want);
}

TEST(SrclexTest, CommentsKeptWithExactLines) {
  const std::vector<Token> t =
      lex("// one\nint a;\n/* two\nlines */\nint b;\n");
  ASSERT_GE(t.size(), 2u);
  EXPECT_EQ(t[0].kind, Kind::kComment);
  EXPECT_EQ(t[0].text, "// one");
  EXPECT_EQ(t[0].line, 1);
  // The block comment starts on line 3; the token after it is on line 5.
  size_t block = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Kind::kComment && t[i].text.rfind("/*", 0) == 0) {
      block = i;
    }
  }
  EXPECT_EQ(t[block].line, 3);
  EXPECT_EQ(t[block + 1].text, "int");
  EXPECT_EQ(t[block + 1].line, 5);
}

TEST(SrclexTest, StringEscapesAndPrefixes) {
  const std::vector<Token> t = lex("u8\"a\\\"b\" L'x' R\"tag(raw \" ))tag\"");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0].kind, Kind::kString);
  EXPECT_EQ(string_content(t[0]), "a\\\"b");  // escapes kept, not decoded
  EXPECT_EQ(t[1].kind, Kind::kChar);
  EXPECT_EQ(t[2].kind, Kind::kString);
  EXPECT_EQ(string_content(t[2]), "raw \" )");
}

TEST(SrclexTest, PpNumbers) {
  const std::vector<Token> t = lex("1'000'000 0x1.8p-3 3.14f .5e+10");
  ASSERT_EQ(t.size(), 4u);
  for (const Token& tok : t) EXPECT_EQ(tok.kind, Kind::kNumber);
  EXPECT_EQ(t[0].text, "1'000'000");
  EXPECT_EQ(t[1].text, "0x1.8p-3");
  EXPECT_EQ(t[3].text, ".5e+10");
}

TEST(SrclexTest, UnterminatedLiteralDoesNotThrow) {
  const std::vector<Token> t = lex("const char* s = \"never closed");
  ASSERT_FALSE(t.empty());
  EXPECT_EQ(t.back().kind, Kind::kString);
}

// ---------------------------------------------------------------- detlint

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

LintRun run_detlint(const std::string& args) {
  const std::string cmd = std::string(DETLINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  LintRun r;
  if (!pipe) return r;
  char buf[4096];
  while (size_t got = fread(buf, 1, sizeof buf, pipe)) {
    r.output.append(buf, got);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixture(const std::string& name) {
  return std::string(GPUMAS_SOURCE_DIR) + "/tests/detlint_fixtures/" + name;
}

TEST(DetlintTest, CleanFixturePasses) {
  const LintRun r = run_detlint(fixture("clean"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 findings"), std::string::npos) << r.output;
}

TEST(DetlintTest, UnorderedIterSeededViolationCaught) {
  const LintRun r = run_detlint(fixture("unordered_iter"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[unordered-iter]"), std::string::npos) << r.output;
  // Both the range-for and the .begin() harvest fire; the annotated twin
  // stays quiet and shows up in the suppression count instead.
  EXPECT_NE(r.output.find("range-for over unordered container 'weights'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("iterator over unordered container 'weights'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("2 suppressed by annotations"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("suppressed.cc"), std::string::npos) << r.output;
}

TEST(DetlintTest, WallClockSeededViolationCaught) {
  const LintRun r = run_detlint(fixture("wall_clock"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'steady_clock'"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'rand'"), std::string::npos) << r.output;
  // The annotated wait-path twin is suppressed, not reported.
  EXPECT_EQ(r.output.find("suppressed.cc"), std::string::npos) << r.output;
  // The exemption for the orchestrator driver is anchored to the path
  // tools/orchestrate.cc, not the basename: the fixture's impostor
  // orchestrate.cc lives in the wrong directory and must be flagged.
  EXPECT_NE(r.output.find("orchestrate.cc"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'chrono'"), std::string::npos) << r.output;
}

TEST(DetlintTest, PtrKeySeededViolationCaught) {
  const LintRun r = run_detlint(fixture("ptr_key"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[ptr-key]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("pointer-keyed map"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("pointer-keyed unordered_set"), std::string::npos)
      << r.output;
  // Pointer as mapped VALUE is fine: exactly the two key findings.
  EXPECT_NE(r.output.find("2 findings"), std::string::npos) << r.output;
}

TEST(DetlintTest, PodInitSeededViolationCaught) {
  const LintRun r = run_detlint(fixture("pod_init"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[pod-init]"), std::string::npos) << r.output;
  for (const char* member : {"'cycles'", "'ipc'", "'valid'", "'label'"}) {
    EXPECT_NE(r.output.find(member), std::string::npos)
        << member << "\n" << r.output;
  }
  // NSDMI members and class-typed members must not fire.
  EXPECT_NE(r.output.find("4 findings"), std::string::npos) << r.output;
}

TEST(DetlintTest, RawOfstreamSeededViolationCaught) {
  const LintRun r = run_detlint(fixture("raw_ofstream"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[raw-ofstream]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("atomic_write_file"), std::string::npos)
      << r.output;
  // Exactly the un-annotated write fires: the annotated twin is
  // suppressed and the *_test.cc TU is exempt by basename.
  EXPECT_NE(r.output.find("1 finding"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 suppressed by annotations"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("exempt_test.cc"), std::string::npos) << r.output;
}

TEST(DetlintTest, ConfigParityCatchesPlantedKeyDrift) {
  const LintRun r = run_detlint(fixture("config_parity"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[config-parity]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'ghost_knob'"), std::string::npos) << r.output;
  // sim_threads is on the declared exclusion list, num_sms/warp_sched are
  // rendered: exactly the planted key fires.
  EXPECT_NE(r.output.find("1 finding"), std::string::npos) << r.output;
}

TEST(DetlintTest, ResultParityCatchesUnparsedField) {
  const LintRun r = run_detlint(fixture("result_parity"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[result-parity]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'extra='"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("1 finding"), std::string::npos) << r.output;
}

TEST(DetlintTest, ReadmeFlagsCatchesBothDriftDirections) {
  const LintRun r = run_detlint(
      "--readme " + fixture("readme_flags/README.md") + " " +
      fixture("readme_flags"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[readme-flags]"), std::string::npos) << r.output;
  // Accepted but undocumented...
  EXPECT_NE(r.output.find("'--beta'"), std::string::npos) << r.output;
  // ...and documented but not accepted.
  EXPECT_NE(r.output.find("'--gamma'"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("--alpha"), std::string::npos) << r.output;
}

TEST(DetlintTest, BadAnnotationsAreThemselvesFindings) {
  const LintRun r = run_detlint(fixture("bad_annotation"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unknown rule 'no-such-rule'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("needs a reason"), std::string::npos) << r.output;
}

TEST(DetlintTest, JsonReportMatchesTextOutput) {
  const std::string json_path =
      ::testing::TempDir() + "/detlint_report.json";
  const LintRun r = run_detlint("--json " + json_path + " " +
                                fixture("config_parity"));
  EXPECT_EQ(r.exit_code, 1) << r.output;
  std::ifstream in(json_path);
  ASSERT_TRUE(in.good()) << json_path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rule\": \"config-parity\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("ghost_knob"), std::string::npos) << json;
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos) << json;
}

TEST(DetlintTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_detlint("").exit_code, 2);
  EXPECT_EQ(run_detlint("--no-such-flag x").exit_code, 2);
  EXPECT_EQ(run_detlint("/no/such/path").exit_code, 2);
}

// The determinism contract: the real tree lints clean. A regression that
// introduces unordered iteration, wall-clock leakage, schema drift or an
// uninitialized serialized member fails this test before any golden
// byte-identity test has to catch it dynamically.
TEST(DetlintTest, RealTreeIsViolationFree) {
  const std::string src = std::string(GPUMAS_SOURCE_DIR);
  const LintRun r = run_detlint("--readme " + src + "/README.md " + src +
                                "/src " + src + "/bench " + src + "/tools " +
                                src + "/tests");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 findings"), std::string::npos) << r.output;
}

}  // namespace
