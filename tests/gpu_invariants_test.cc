// Property-style invariant tests on the GPU model under multi-application
// execution: accounting conservation, address isolation, repartitioning
// safety, and bandwidth ceilings.
#include <gtest/gtest.h>

#include <numeric>

#include "common/check.h"
#include "common/prng.h"
#include "sim/gpu.h"

namespace gpumas::sim {
namespace {

GpuConfig small_gpu() {
  GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.num_channels = 2;
  cfg.l2.size_bytes = 64 * 1024;
  return cfg;
}

KernelParams random_kernel(Prng& prng, const std::string& name) {
  KernelParams kp;
  kp.name = name;
  kp.num_blocks = 4 + static_cast<int>(prng.next_below(24));
  kp.warps_per_block = 1 + static_cast<int>(prng.next_below(6));
  kp.insns_per_warp = 100 + static_cast<int>(prng.next_below(300));
  kp.mem_ratio = prng.next_double() * 0.3;
  kp.store_ratio = prng.next_double() * 0.4;
  const AccessPattern pats[] = {AccessPattern::kStreaming,
                                AccessPattern::kRandom, AccessPattern::kTiled};
  kp.pattern = pats[prng.next_below(3)];
  kp.hot_fraction = prng.next_double();
  kp.hot_bytes = 16 * 1024 + prng.next_below(128 * 1024);
  kp.footprint_bytes = (1 + prng.next_below(64)) << 20;
  kp.divergence = 1 + static_cast<int>(prng.next_below(8));
  kp.burst_lines = 1 + static_cast<int>(prng.next_below(8));
  kp.ilp = 1 + static_cast<int>(prng.next_below(8));
  kp.mlp = 1 + static_cast<int>(prng.next_below(8));
  kp.seed = prng.next();
  return kp;
}

// Property: under random co-scheduled workloads, every instruction is
// accounted, all blocks complete, and cache/DRAM counters are coherent.
TEST(GpuInvariantsTest, RandomCoRunsConserveEverything) {
  Prng prng(20260611);
  for (int trial = 0; trial < 12; ++trial) {
    Gpu gpu(small_gpu());
    const int napps = 2 + static_cast<int>(prng.next_below(2));
    std::vector<KernelParams> kernels;
    for (int a = 0; a < napps; ++a) {
      kernels.push_back(random_kernel(prng, "k" + std::to_string(a)));
      gpu.launch(kernels.back());
    }
    gpu.set_even_partition();
    const RunResult r = gpu.run_to_completion();
    for (int a = 0; a < napps; ++a) {
      const AppStats& s = r.apps[static_cast<size_t>(a)];
      const KernelParams& kp = kernels[static_cast<size_t>(a)];
      EXPECT_EQ(s.warp_insns, kp.total_warp_insns()) << "trial " << trial;
      EXPECT_EQ(s.blocks_completed, static_cast<uint64_t>(kp.num_blocks));
      EXPECT_EQ(s.warps_completed, static_cast<uint64_t>(kp.total_warps()));
      EXPECT_LE(s.l1_hits, s.l1_accesses);
      EXPECT_LE(s.l2_hits, s.l2_accesses);
      EXPECT_LE(s.dram_transactions, s.l2_accesses);
      EXPECT_TRUE(s.done);
      EXPECT_LE(s.finish_cycle, r.cycles);
      EXPECT_GE(s.mem_insns, s.l1_accesses / 32) << "divergence bound";
    }
  }
}

// Property: aggregate DRAM bandwidth can never exceed the configured peak.
TEST(GpuInvariantsTest, BandwidthNeverExceedsPeak) {
  const GpuConfig cfg = small_gpu();
  Gpu gpu(cfg);
  KernelParams hog;
  hog.name = "hog";
  hog.num_blocks = 32;
  hog.warps_per_block = 4;
  hog.insns_per_warp = 200;
  hog.mem_ratio = 0.5;
  hog.pattern = AccessPattern::kStreaming;
  hog.footprint_bytes = 512ull << 20;
  hog.mlp = 16;
  hog.seed = 77;
  gpu.launch(hog);
  const RunResult r = gpu.run_to_completion();
  const double gbps = bandwidth_gbps(
      r.apps[0].dram_transactions * cfg.l2.line_bytes, r.cycles,
      cfg.core_freq_ghz);
  EXPECT_LE(gbps, cfg.peak_bandwidth_gbps() * 1.001);
  // On this scaled-down device (8 SMs, 2 channels) the hog's achievable
  // share is bounded by its L1 MSHRs and the crossbar VQ depth; it should
  // still put a visible load on DRAM.
  EXPECT_GT(gbps, cfg.peak_bandwidth_gbps() * 0.15)
      << "hog should load DRAM";
}

// Address isolation: two apps running the same kernel never share cache
// lines, so their stats must be identical under a symmetric partition.
TEST(GpuInvariantsTest, SameKernelTwiceIsSymmetric) {
  Gpu gpu(small_gpu());
  KernelParams kp;
  kp.name = "twin";
  kp.num_blocks = 8;
  kp.warps_per_block = 4;
  kp.insns_per_warp = 300;
  kp.mem_ratio = 0.1;
  kp.footprint_bytes = 4 << 20;
  kp.seed = 5;
  gpu.launch(kp);
  gpu.launch(kp);
  gpu.set_even_partition();
  const RunResult r = gpu.run_to_completion();
  EXPECT_EQ(r.apps[0].warp_insns, r.apps[1].warp_insns);
  EXPECT_EQ(r.apps[0].l1_accesses, r.apps[1].l1_accesses);
  // Finish cycles may differ slightly through arbitration, but not by
  // more than a few percent now that service order rotates.
  const double a = static_cast<double>(r.apps[0].finish_cycle);
  const double b = static_cast<double>(r.apps[1].finish_cycle);
  EXPECT_LT(std::abs(a - b) / std::max(a, b), 0.05);
}

// Repartitioning mid-run must never lose or duplicate work, whatever the
// sequence of moves.
TEST(GpuInvariantsTest, RandomRepartitioningIsSafe) {
  Prng prng(99);
  for (int trial = 0; trial < 6; ++trial) {
    Gpu gpu(small_gpu());
    KernelParams a = random_kernel(prng, "a");
    KernelParams b = random_kernel(prng, "b");
    a.num_blocks = 32;  // long enough to reallocate mid-flight
    b.num_blocks = 32;
    gpu.launch(a);
    gpu.launch(b);
    gpu.set_even_partition();
    uint64_t moves = 0;
    uint64_t ticks = 0;
    while (!gpu.done()) {
      GPUMAS_CHECK(gpu.cycle() < small_gpu().max_cycles);
      gpu.tick();
      // Count executed ticks, not cycle values: idle-cycle fast-forwarding
      // may jump the clock over any particular modulus.
      if (++ticks % 1000 == 0) {
        const int from = static_cast<int>(prng.next_below(2));
        const auto counts = gpu.partition_counts();
        if (counts[static_cast<size_t>(from)] > 2) {
          moves += static_cast<uint64_t>(
              gpu.repartition(from, 1 - from, 1 + static_cast<int>(prng.next_below(2))));
        }
      }
    }
    EXPECT_GT(moves, 0u) << "trial " << trial;
    const auto& stats = gpu.stats();
    EXPECT_EQ(stats[0].warp_insns, a.total_warp_insns()) << "trial " << trial;
    EXPECT_EQ(stats[1].warp_insns, b.total_warp_insns()) << "trial " << trial;
    // Partition counts always sum to the device size.
    const auto counts = gpu.partition_counts();
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 8);
  }
}

// Unowned SMs must contribute nothing: running on a 4-SM partition of an
// 8-SM device equals (deterministically) a dedicated smaller run.
TEST(GpuInvariantsTest, UnassignedSmsStayIdle) {
  KernelParams kp;
  kp.name = "quarter";
  kp.num_blocks = 8;
  kp.warps_per_block = 4;
  kp.insns_per_warp = 200;
  kp.mem_ratio = 0.05;
  kp.seed = 3;

  Gpu gpu(small_gpu());
  gpu.launch(kp);
  gpu.set_partition_counts({4});
  const RunResult r = gpu.run_to_completion();
  EXPECT_EQ(r.apps[0].warp_insns, kp.total_warp_insns());
  // The four unowned SMs never received blocks: block count fits in 4 SMs'
  // capacity and the run completed, which the conservation check implies.
  EXPECT_TRUE(r.apps[0].done);
}

}  // namespace
}  // namespace gpumas::sim
