// Unit tests for the FR-FCFS memory channel.
#include "sim/dram.h"

#include <gtest/gtest.h>

#include "sim/gpu_config.h"

namespace gpumas::sim {
namespace {

GpuConfig cfg_with(MemSchedPolicy policy) {
  GpuConfig cfg;
  cfg.mem_sched = policy;
  cfg.banks_per_channel = 2;
  cfg.channel_queue_size = 8;
  cfg.row_hit_cycles = 4;
  cfg.row_miss_cycles = 10;
  cfg.data_bus_cycles = 2;
  return cfg;
}

DramRequest req(uint64_t line, uint32_t bank, uint64_t row, uint64_t cycle) {
  return DramRequest{line, bank, row, 0, cycle, false};
}

TEST(DramTest, ServicesSingleRequest) {
  DramChannel ch(cfg_with(MemSchedPolicy::kFrFcfs), 0);
  ASSERT_TRUE(ch.enqueue(req(1, 0, 7, 0)));
  ch.tick(0);
  EXPECT_EQ(ch.serviced(), 1u);
  // Row miss (cold bank): ready at 0 + 10 + 2.
  EXPECT_TRUE(ch.drain_completions(11).empty());
  const auto& done = ch.drain_completions(12);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].line, 1u);
  EXPECT_TRUE(ch.idle());
}

TEST(DramTest, FirstAccessIsRowMissSecondIsHit) {
  DramChannel ch(cfg_with(MemSchedPolicy::kFrFcfs), 0);
  ASSERT_TRUE(ch.enqueue(req(1, 0, 7, 0)));
  ASSERT_TRUE(ch.enqueue(req(2, 0, 7, 0)));
  uint64_t cycle = 0;
  while (ch.serviced() < 2 && cycle < 100) ch.tick(cycle++);
  EXPECT_EQ(ch.row_misses(), 1u);
  EXPECT_EQ(ch.row_hits(), 1u);
}

TEST(DramTest, FrFcfsPrioritizesRowHitOverOlderRequest) {
  DramChannel ch(cfg_with(MemSchedPolicy::kFrFcfs), 0);
  // Open row 7 on bank 0.
  ASSERT_TRUE(ch.enqueue(req(1, 0, 7, 0)));
  ch.tick(0);
  ASSERT_EQ(ch.serviced(), 1u);
  // Oldest = row 9 (miss); younger = row 7 (hit). FR-FCFS picks the hit.
  uint64_t t = 20;  // past bank busy
  ASSERT_TRUE(ch.enqueue(req(10, 0, 9, t)));
  ASSERT_TRUE(ch.enqueue(req(11, 0, 7, t)));
  ch.tick(t);
  EXPECT_EQ(ch.row_hits(), 1u);
  EXPECT_EQ(ch.row_misses(), 1u);  // only the initial cold access so far
}

TEST(DramTest, FcfsServesOldestEvenWhenYoungerWouldRowHit) {
  DramChannel ch(cfg_with(MemSchedPolicy::kFcfs), 0);
  ASSERT_TRUE(ch.enqueue(req(1, 0, 7, 0)));
  ch.tick(0);
  uint64_t t = 20;
  ASSERT_TRUE(ch.enqueue(req(10, 0, 9, t)));
  ASSERT_TRUE(ch.enqueue(req(11, 0, 7, t)));
  ch.tick(t);
  // Strict order: row 9 (a miss) goes first.
  EXPECT_EQ(ch.row_misses(), 2u);
  EXPECT_EQ(ch.row_hits(), 0u);
}

TEST(DramTest, QueueCapacityIsEnforced) {
  DramChannel ch(cfg_with(MemSchedPolicy::kFrFcfs), 0);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ch.enqueue(req(static_cast<uint64_t>(i), 0, 1, 0)));
  }
  EXPECT_TRUE(ch.full());
  EXPECT_FALSE(ch.enqueue(req(99, 0, 1, 0)));
}

TEST(DramTest, DataBusSerializesBackToBackIssues) {
  DramChannel ch(cfg_with(MemSchedPolicy::kFrFcfs), 0);
  // Two requests to different banks: banks are parallel but the bus is not.
  ASSERT_TRUE(ch.enqueue(req(1, 0, 7, 0)));
  ASSERT_TRUE(ch.enqueue(req(2, 1, 7, 0)));
  ch.tick(0);
  EXPECT_EQ(ch.serviced(), 1u);
  ch.tick(1);  // bus still busy (data_bus_cycles = 2)
  EXPECT_EQ(ch.serviced(), 1u);
  ch.tick(2);
  EXPECT_EQ(ch.serviced(), 2u);
}

TEST(DramTest, BankBusySerializesSameBank) {
  DramChannel ch(cfg_with(MemSchedPolicy::kFrFcfs), 0);
  ASSERT_TRUE(ch.enqueue(req(1, 0, 7, 0)));
  ASSERT_TRUE(ch.enqueue(req(2, 0, 8, 0)));  // same bank, different row
  ch.tick(0);
  EXPECT_EQ(ch.serviced(), 1u);
  // Bank 0 busy until cycle 10; bus frees at 2 but the bank gates issue.
  for (uint64_t t = 1; t < 10; ++t) {
    ch.tick(t);
    EXPECT_EQ(ch.serviced(), 1u) << "issued too early at cycle " << t;
  }
  ch.tick(10);
  EXPECT_EQ(ch.serviced(), 2u);
}

TEST(DramTest, WritesCompleteAndAreFlaggedAsWrites) {
  DramChannel ch(cfg_with(MemSchedPolicy::kFrFcfs), 0);
  DramRequest w = req(5, 0, 3, 0);
  w.is_write = true;
  ASSERT_TRUE(ch.enqueue(w));
  ch.tick(0);
  const auto& done = ch.drain_completions(12);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].is_write);
}

// Drain order is deterministic by construction: ascending (ready_cycle,
// issue order), not an artifact of how earlier drains removed elements. A
// row hit issued after a row miss on another bank overtakes it in ready
// time and must drain first.
TEST(DramTest, DrainOrderIsReadyCycleThenIssueOrder) {
  DramChannel ch(cfg_with(MemSchedPolicy::kFrFcfs), 0);
  // Open row 7 on bank 0.
  ASSERT_TRUE(ch.enqueue(req(1, 0, 7, 0)));
  ch.tick(0);
  ASSERT_EQ(ch.drain_completions(12).size(), 1u);
  // Bank 1 row miss issues at t (ready t+12); the bank-0 row hit issues at
  // t+2 once the bus frees (ready t+2+6 = t+8) and completes first.
  const uint64_t t = 20;
  ASSERT_TRUE(ch.enqueue(req(10, 1, 9, t)));
  ch.tick(t);
  ASSERT_TRUE(ch.enqueue(req(11, 0, 7, t)));
  ch.tick(t + 1);  // bus busy
  ch.tick(t + 2);
  ASSERT_EQ(ch.serviced(), 3u);
  const auto& done = ch.drain_completions(t + 12);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].line, 11u);  // ready t+8
  EXPECT_EQ(done[1].line, 10u);  // ready t+12
  EXPECT_LE(done[0].ready_cycle, done[1].ready_cycle);
}

// Property: the completion sequence is independent of the drain cadence —
// collecting every cycle and collecting in coarse batches yield the same
// order. (The former swap-pop removal made batch order depend on removal
// history.)
TEST(DramTest, DrainOrderIndependentOfDrainCadence) {
  const GpuConfig cfg = cfg_with(MemSchedPolicy::kFrFcfs);
  DramChannel every(cfg, 0);
  DramChannel batched(cfg, 0);
  std::vector<DramCompletion> seq_every;
  std::vector<DramCompletion> seq_batched;
  uint64_t x = 777;
  for (uint64_t cycle = 0; cycle < 4000; ++cycle) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    if ((x >> 33) % 3 == 0 && !every.full() && !batched.full()) {
      const DramRequest r = req((x >> 7) & 0xffff,
                                static_cast<uint32_t>((x >> 17) % 2),
                                (x >> 40) % 4, cycle);
      ASSERT_TRUE(every.enqueue(r));
      ASSERT_TRUE(batched.enqueue(r));
    }
    every.tick(cycle);
    batched.tick(cycle);
    for (const auto& c : every.drain_completions(cycle)) {
      seq_every.push_back(c);
    }
    if (cycle % 13 == 0) {
      for (const auto& c : batched.drain_completions(cycle)) {
        seq_batched.push_back(c);
      }
    }
  }
  for (uint64_t cycle = 4000; cycle < 4100; ++cycle) {
    every.tick(cycle);
    batched.tick(cycle);
    for (const auto& c : every.drain_completions(cycle)) {
      seq_every.push_back(c);
    }
    for (const auto& c : batched.drain_completions(cycle)) {
      seq_batched.push_back(c);
    }
  }
  ASSERT_EQ(seq_every.size(), seq_batched.size());
  for (size_t i = 0; i < seq_every.size(); ++i) {
    EXPECT_EQ(seq_every[i].line, seq_batched[i].line) << "position " << i;
    EXPECT_EQ(seq_every[i].ready_cycle, seq_batched[i].ready_cycle)
        << "position " << i;
  }
}

// Property: every enqueued request is serviced exactly once, regardless of
// arrival pattern, and queue-wait accounting is consistent.
TEST(DramTest, PropertyConservationUnderRandomTraffic) {
  DramChannel ch(cfg_with(MemSchedPolicy::kFrFcfs), 0);
  uint64_t enqueued = 0;
  uint64_t completed = 0;
  uint64_t x = 12345;
  for (uint64_t cycle = 0; cycle < 5000; ++cycle) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    if ((x >> 33) % 3 == 0 && !ch.full()) {
      const uint32_t bank = static_cast<uint32_t>((x >> 17) % 2);
      const uint64_t row = (x >> 40) % 4;
      ASSERT_TRUE(ch.enqueue(req(enqueued, bank, row, cycle)));
      ++enqueued;
    }
    ch.tick(cycle);
    completed += ch.drain_completions(cycle).size();
  }
  for (uint64_t cycle = 5000; cycle < 6000; ++cycle) {
    ch.tick(cycle);
    completed += ch.drain_completions(cycle).size();
  }
  EXPECT_EQ(ch.serviced(), enqueued);
  EXPECT_EQ(completed, enqueued);
  EXPECT_EQ(ch.row_hits() + ch.row_misses(), enqueued);
  EXPECT_TRUE(ch.idle());
}

}  // namespace
}  // namespace gpumas::sim
