// Tests for the profiler and the Table 3.1 classifier.
#include "profile/profile.h"

#include <gtest/gtest.h>

#include "sim/gpu.h"

namespace gpumas::profile {
namespace {

AppProfile profile_with(double mb, double l2l1, double ipc, double r) {
  AppProfile p;
  p.mb_gbps = mb;
  p.l2l1_gbps = l2l1;
  p.ipc = ipc;
  p.r = r;
  return p;
}

TEST(ClassifierTest, HighBandwidthIsClassM) {
  EXPECT_EQ(classify(profile_with(120, 90, 500, 0.07)), AppClass::kM);
  EXPECT_EQ(classify(profile_with(107.1, 0, 10, 0.0)), AppClass::kM);
}

TEST(ClassifierTest, MidBandwidthIsClassMC) {
  EXPECT_EQ(classify(profile_with(90, 140, 500, 0.06)), AppClass::kMC);
  EXPECT_EQ(classify(profile_with(58.1, 10, 900, 0.01)), AppClass::kMC);
}

TEST(ClassifierTest, CacheTrafficWithLowIpcIsClassC) {
  // Via the L2->L1 > gamma arm.
  EXPECT_EQ(classify(profile_with(35, 150, 100, 0.1)), AppClass::kC);
  // Via the R > 0.2 arm.
  EXPECT_EQ(classify(profile_with(10, 20, 100, 0.3)), AppClass::kC);
}

TEST(ClassifierTest, HighIpcEscapesClassC) {
  // Same cache traffic, but IPC above epsilon -> class A.
  EXPECT_EQ(classify(profile_with(35, 150, 400, 0.1)), AppClass::kA);
}

TEST(ClassifierTest, FallbackIsClassA) {
  // LUD/NN-style: low everything (matches no explicit rule).
  EXPECT_EQ(classify(profile_with(2, 8, 50, 0.03)), AppClass::kA);
}

TEST(ClassifierTest, ThresholdsAreConfigurable) {
  ClassifierThresholds t;
  t.alpha = 50;
  EXPECT_EQ(classify(profile_with(60, 0, 500, 0.0), t), AppClass::kM);
}

TEST(ClassifierTest, ClassNames) {
  EXPECT_STREQ(class_name(AppClass::kM), "M");
  EXPECT_STREQ(class_name(AppClass::kMC), "MC");
  EXPECT_STREQ(class_name(AppClass::kC), "C");
  EXPECT_STREQ(class_name(AppClass::kA), "A");
}

sim::GpuConfig small_gpu() {
  sim::GpuConfig cfg;
  cfg.num_sms = 8;
  cfg.num_channels = 2;
  cfg.l2.size_bytes = 64 * 1024;
  return cfg;
}

// Compute-dominated so that IPC scales monotonically with SM count;
// memory-bound kernels can legitimately lose IPC with more SMs (that is
// GUPS's behaviour in the paper) and are tested elsewhere.
sim::KernelParams test_kernel() {
  sim::KernelParams kp;
  kp.name = "prof";
  kp.num_blocks = 16;
  kp.warps_per_block = 4;
  kp.insns_per_warp = 400;
  kp.mem_ratio = 0.05;
  kp.footprint_bytes = 512 << 10;
  kp.divergence = 1;
  kp.ilp = 6;
  kp.seed = 5;
  return kp;
}

TEST(ProfilerTest, ProfileFieldsAreConsistent) {
  Profiler profiler(small_gpu());
  const AppProfile p = profiler.profile(test_kernel());
  EXPECT_GT(p.solo_cycles, 0u);
  EXPECT_GT(p.ipc, 0.0);
  EXPECT_NEAR(p.r, 0.05, 0.02);
  EXPECT_GE(p.l1_hit_rate, 0.0);
  EXPECT_LE(p.l1_hit_rate, 1.0);
  // IPC is thread instructions over cycles.
  EXPECT_NEAR(p.ipc,
              static_cast<double>(p.thread_insns) /
                  static_cast<double>(p.solo_cycles),
              1e-9);
}

TEST(ProfilerTest, DeterministicProfiles) {
  Profiler profiler(small_gpu());
  const AppProfile a = profiler.profile(test_kernel());
  const AppProfile b = profiler.profile(test_kernel());
  EXPECT_EQ(a.solo_cycles, b.solo_cycles);
  EXPECT_DOUBLE_EQ(a.mb_gbps, b.mb_gbps);
}

TEST(ProfilerTest, ScalabilityReturnsRequestedPoints) {
  Profiler profiler(small_gpu());
  const auto points = profiler.scalability(test_kernel(), {2, 4, 8});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].sms, 2);
  EXPECT_EQ(points[2].sms, 8);
  // A parallel kernel gains IPC with more SMs.
  EXPECT_GT(points[2].ipc, points[0].ipc);
}

TEST(ProfilerTest, ProfileOnFewerSmsHasLowerOrEqualIpc) {
  Profiler profiler(small_gpu());
  const AppProfile full = profiler.profile(test_kernel());
  const AppProfile quarter = profiler.profile(test_kernel(), 2);
  EXPECT_LE(quarter.ipc, full.ipc * 1.05);
}

TEST(ProfilerTest, RejectsInvalidSmCounts) {
  Profiler profiler(small_gpu());
  EXPECT_THROW(profiler.scalability(test_kernel(), {0}), std::logic_error);
  EXPECT_THROW(profiler.scalability(test_kernel(), {9}), std::logic_error);
}

}  // namespace
}  // namespace gpumas::profile
